//! `.sxvpkg` — on-disk packages for instant cold start.
//!
//! A package captures everything `sxv` derives from a DTD + document +
//! access specs before it can answer its first query: the arena
//! [`Document`](sxv_xml::Document), the structural
//! [`DocIndex`](sxv_xml::DocIndex) (pre/post ranks, depths, label
//! occurrence lists, text buffer), and one
//! [`AccessView`](sxv_xpath::AccessView) per role (accessibility /
//! dummy / view-element bitmaps laid out as dense `u64` words, the view
//! CSR, dummy labels, visible attributes). All doc-sized state is
//! stored as flat little-endian arrays in checksummed sections, so
//! loading is a single read + bulk word decode instead of an XML parse
//! and a σ-expansion pass — milliseconds instead of seconds on large
//! documents.
//!
//! See [`format`] for the byte layout, [`writer`] for packing, and
//! [`loader`] for the validating load path and its error taxonomy
//! ([`Error`]).

pub mod error;
pub mod format;
pub mod loader;
pub mod writer;

pub use error::{Error, Result};
pub use format::{FORMAT_VERSION, MAGIC};
pub use loader::{load_package_bytes, load_package_file, LoadedRole, Package};
pub use writer::{package_to_bytes, write_package_file, RoleArtifacts};

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_core::{build_access_view, derive_view, AccessSpec};
    use sxv_dtd::parse_dtd;
    use sxv_xml::{parse, to_string, DocIndex};
    use sxv_xpath::AccessView;

    const DTD: &str = concat!(
        "<!ELEMENT site (persons, items)>\n",
        "<!ELEMENT persons (person*)>\n",
        "<!ELEMENT person (name, secret)>\n",
        "<!ELEMENT name (#PCDATA)>\n",
        "<!ELEMENT secret (#PCDATA)>\n",
        "<!ELEMENT items (item*)>\n",
        "<!ELEMENT item (#PCDATA)>\n",
        "<!ATTLIST person id CDATA #REQUIRED>\n",
        "<!ATTLIST item cat CDATA #IMPLIED>\n",
    );

    const XML: &str = concat!(
        r#"<site><persons><person id="p1"><name>ann</name><secret>k1</secret></person>"#,
        r#"<person id="p2"><name>bob</name><secret>k2</secret></person></persons>"#,
        r#"<items><item cat="a">lamp</item><item>rug</item></items></site>"#
    );

    const SPEC: &str = concat!(
        "ann(person, secret) = N\n",
        "ann(items, item) = [@cat=\"a\"]\n",
        "ann(person, @id) = N\n",
    );

    fn build() -> (sxv_xml::Document, DocIndex, AccessView) {
        let dtd = parse_dtd(DTD, "site").expect("dtd");
        let doc = parse(XML).expect("doc");
        let index = DocIndex::new(&doc).expect("non-empty doc");
        let spec = AccessSpec::parse(&dtd, SPEC, &[]).expect("spec");
        let view = derive_view(&spec).expect("view");
        let access = build_access_view(&spec, &view, &doc, Some(&index));
        (doc, index, access)
    }

    fn packed() -> Vec<u8> {
        let (doc, index, access) = build();
        let roles = [RoleArtifacts { name: "staff", spec_text: SPEC, binds: &[], access: &access }];
        package_to_bytes(DTD, "site", &doc, &index, &roles).expect("pack")
    }

    #[test]
    fn roundtrip_preserves_document_index_and_views() {
        let (doc, index, access) = build();
        let binds = vec![("k".to_string(), "v".to_string())];
        let roles =
            [RoleArtifacts { name: "staff", spec_text: SPEC, binds: &binds, access: &access }];
        let bytes = package_to_bytes(DTD, "site", &doc, &index, &roles).expect("pack");
        let pkg = load_package_bytes(&bytes).expect("load");

        assert_eq!(pkg.dtd_text, DTD);
        assert_eq!(pkg.root_name, "site");
        assert_eq!(to_string(&pkg.doc), to_string(&doc));
        assert_eq!(pkg.doc.len(), doc.len());
        for id in doc.all_ids() {
            assert_eq!(pkg.doc.parent(id), doc.parent(id));
            assert_eq!(pkg.doc.children(id), doc.children(id));
            assert_eq!(pkg.doc.label_opt(id), doc.label_opt(id));
            assert_eq!(pkg.doc.attributes(id), doc.attributes(id));
            assert_eq!(pkg.index.subtree_end(id), index.subtree_end(id));
            assert_eq!(pkg.index.post_rank(id), index.post_rank(id));
            assert_eq!(pkg.index.depth(id), index.depth(id));
        }
        for label in doc.label_table() {
            assert_eq!(pkg.index.label_list(label), index.label_list(label));
        }
        assert_eq!(pkg.index.text_buffer(), index.text_buffer());

        assert_eq!(pkg.roles.len(), 1);
        let role = &pkg.roles[0];
        assert_eq!(role.name, "staff");
        assert_eq!(role.spec_text, SPEC);
        assert_eq!(role.binds, binds);
        let av = &role.access;
        assert_eq!(av.len(), access.len());
        assert_eq!(av.accessible_count(), access.accessible_count());
        assert_eq!(av.root(), access.root());
        for id in doc.all_ids() {
            assert_eq!(av.in_view(id), access.in_view(id));
            assert_eq!(av.is_member(id), access.is_member(id));
            assert_eq!(av.is_dummy(id), access.is_dummy(id));
            assert_eq!(av.view_parent(id), access.view_parent(id));
            assert_eq!(av.view_children(id), access.view_children(id));
            assert_eq!(av.dummy_label(id), access.dummy_label(id));
        }
        assert_eq!(av.visible_attr_table(), access.visible_attr_table());
        assert_eq!(av.dummy_label_table(), access.dummy_label_table());
    }

    #[test]
    fn file_roundtrip_is_atomic_and_loadable() {
        let (doc, index, access) = build();
        let roles = [RoleArtifacts { name: "staff", spec_text: SPEC, binds: &[], access: &access }];
        let dir = std::env::temp_dir().join(format!("sxvpkg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.sxvpkg");
        write_package_file(&path, DTD, "site", &doc, &index, &roles).expect("write");
        assert!(!path.with_extension("sxvpkg.tmp").exists(), "temp file must be renamed away");
        let pkg = load_package_file(&path).expect("load");
        assert_eq!(to_string(&pkg.doc), to_string(&doc));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_files_error_at_every_cut() {
        let bytes = packed();
        // Cutting the file anywhere must yield a typed error, not a
        // panic or a silently-wrong package. Sample densely at the
        // front (header/table) and sparsely through the payloads.
        let cuts = (0..256.min(bytes.len())).chain((256..bytes.len()).step_by(97));
        for cut in cuts {
            match load_package_bytes(&bytes[..cut]) {
                Err(
                    Error::Truncated { .. }
                    | Error::BadLayout(_)
                    | Error::ChecksumMismatch { .. }
                    | Error::Malformed(_),
                ) => {}
                Err(e) => panic!("cut at {cut}: unexpected error kind {e}"),
                Ok(_) => panic!("cut at {cut}: load succeeded on truncated bytes"),
            }
        }
    }

    #[test]
    fn bad_magic_is_refused() {
        let mut bytes = packed();
        bytes[0] = b'!';
        match load_package_bytes(&bytes) {
            Err(Error::BadMagic { found }) => assert_eq!(found[0], b'!'),
            other => panic!("expected BadMagic, got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn future_version_is_refused_cleanly() {
        let mut bytes = packed();
        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        match load_package_bytes(&bytes) {
            Err(Error::VersionMismatch { found, supported }) => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn unknown_section_kind_is_refused() {
        // Version 1 has no ignorable sections: relabel entry 0 with a
        // kind this reader has never heard of and the load must refuse,
        // not skip it.
        use crate::format::HEADER_BYTES;
        let mut bytes = packed();
        bytes[HEADER_BYTES..HEADER_BYTES + 4].copy_from_slice(&999u32.to_le_bytes());
        match load_package_bytes(&bytes) {
            Err(Error::Malformed(msg)) => assert!(msg.contains("unknown section"), "msg: {msg}"),
            other => panic!("expected Malformed, got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn payload_bitflips_fail_the_checksum() {
        let bytes = packed();
        // Flip one bit in several payload positions (past the section
        // table, which is covered by the geometry checks instead); each
        // must be caught by the owning section's checksum.
        use crate::format::{HEADER_BYTES, TABLE_ENTRY_BYTES};
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let table_end = HEADER_BYTES + count * TABLE_ENTRY_BYTES;
        for pos in [table_end + 4, (table_end + bytes.len()) / 2, bytes.len() - 3] {
            let mut b = bytes.clone();
            b[pos] ^= 0x40;
            match load_package_bytes(&b) {
                Err(Error::ChecksumMismatch { .. }) => {}
                other => panic!(
                    "flip at {pos}: expected ChecksumMismatch, got {other:?}",
                    other = other.map(|_| ())
                ),
            }
        }
    }

    #[test]
    fn out_of_bounds_and_overlapping_sections_are_bad_layout() {
        use crate::format::{HEADER_BYTES, TABLE_ENTRY_BYTES};
        let bytes = packed();

        // Entry 0's offset pushed past EOF (kept 8-aligned so the
        // bounds check, not the alignment check, fires).
        let mut oob = bytes.clone();
        let off_at = HEADER_BYTES + 8;
        let huge = ((bytes.len() as u64 + 16) & !7).to_le_bytes();
        oob[off_at..off_at + 8].copy_from_slice(&huge);
        assert!(matches!(load_package_bytes(&oob), Err(Error::BadLayout(_))), "oob offset");

        // Misaligned offset.
        let mut mis = bytes.clone();
        let cur = u64::from_le_bytes(mis[off_at..off_at + 8].try_into().unwrap());
        mis[off_at..off_at + 8].copy_from_slice(&(cur + 1).to_le_bytes());
        assert!(matches!(load_package_bytes(&mis), Err(Error::BadLayout(_))), "misaligned");

        // Offset + length overflowing u64.
        let mut wrap = bytes.clone();
        wrap[off_at..off_at + 8].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        assert!(matches!(load_package_bytes(&wrap), Err(Error::BadLayout(_))), "u64 wrap");

        // Entry 1 redirected onto entry 0's extent → overlap. Copy
        // entry 0's offset/len/checksum into entry 1 (kinds differ, so
        // the checksum still matches the payload but the spans collide).
        let mut ovl = bytes.clone();
        let (e0, e1) = (HEADER_BYTES, HEADER_BYTES + TABLE_ENTRY_BYTES);
        let entry0_body: Vec<u8> = ovl[e0 + 8..e0 + 32].to_vec();
        ovl[e1 + 8..e1 + 32].copy_from_slice(&entry0_body);
        match load_package_bytes(&ovl) {
            // Both meta sections now alias the same bytes: either the
            // overlap detector or meta re-decode must object.
            Err(Error::BadLayout(_) | Error::Malformed(_) | Error::ChecksumMismatch { .. }) => {}
            other => panic!("overlap: got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn role_count_mismatch_is_malformed() {
        let (doc, index, access) = build();
        let roles = [RoleArtifacts { name: "staff", spec_text: SPEC, binds: &[], access: &access }];
        let bytes = package_to_bytes(DTD, "site", &doc, &index, &roles).expect("pack");
        // Find SEC_META's payload offset via the table and bump the
        // promised role count; refresh the checksum so only the
        // cross-check can catch it.
        use crate::format::{checksum, HEADER_BYTES, SEC_META, TABLE_ENTRY_BYTES};
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let mut b = bytes.clone();
        for i in 0..count {
            let e = HEADER_BYTES + i * TABLE_ENTRY_BYTES;
            if u32::from_le_bytes(b[e..e + 4].try_into().unwrap()) == SEC_META {
                let off = u64::from_le_bytes(b[e + 8..e + 16].try_into().unwrap()) as usize;
                let len = u64::from_le_bytes(b[e + 16..e + 24].try_into().unwrap()) as usize;
                b[off + 16..off + 24].copy_from_slice(&7u64.to_le_bytes());
                let sum = checksum(&b[off..off + len]);
                b[e + 24..e + 32].copy_from_slice(&sum.to_le_bytes());
            }
        }
        match load_package_bytes(&b) {
            Err(Error::Malformed(msg)) => assert!(msg.contains("roles"), "msg: {msg}"),
            other => panic!("expected Malformed, got {other:?}", other = other.map(|_| ())),
        }
    }

    #[test]
    fn empty_package_bytes_are_truncated_not_panic() {
        assert!(matches!(load_package_bytes(&[]), Err(Error::Truncated { .. })));
    }
}

//! The `.sxvpkg` binary layout: header, section table, and the
//! fixed-width little-endian primitives shared by the writer and loader.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ header (24 B): magic [8] · version u32 · sections u32 · pad  │
//! ├──────────────────────────────────────────────────────────────┤
//! │ section table: per section (32 B)                            │
//! │   kind u32 · pad u32 · offset u64 · len u64 · checksum u64   │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload sections, each 8-byte aligned, zero-padded between   │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Section payloads are flat arrays
//! (`u32`/`u64` words, UTF-8 blobs, or `Record`-encoded composites), so
//! loading is a single read plus bulk word decoding — no per-node
//! branching or allocation beyond the target arrays themselves.

use crate::error::{Error, Result};

/// First eight bytes of every package file.
pub const MAGIC: [u8; 8] = *b"SXVPKG00";

/// Format version this build writes and reads. Bump on any layout
/// change; readers refuse other versions cleanly (see `DESIGN.md` §15
/// for the compatibility policy).
pub const FORMAT_VERSION: u32 = 1;

/// Header size: magic + version + section count + reserved padding.
pub const HEADER_BYTES: usize = 24;

/// Bytes per section-table entry.
pub const TABLE_ENTRY_BYTES: usize = 32;

// --- section kinds ---
//
// The format stores every derived column *fat*: child CSR links, text
// node ids, the structural-index tables (subtree ends, depths, element
// and per-label occurrence lists), and the per-role view-children CSR
// all travel as their own sections, laid out exactly as the in-memory
// columns. Loading therefore performs no per-node derivation at all —
// each `u32` column section is *borrowed in place* from the (8-aligned,
// little-endian) package buffer, so cold start costs one read plus
// O(sections) checksums, not O(nodes) work. Post-order ranks are the
// one exception: they are determined by `post = subtree_end − depth`,
// so the index computes them on the fly and no section carries them.

/// Global counts: node count, root id, role count.
pub const SEC_META: u32 = 1;
/// The DTD source text (UTF-8).
pub const SEC_DTD_TEXT: u32 = 2;
/// The DTD root element-type name (UTF-8).
pub const SEC_ROOT_NAME: u32 = 3;
/// Document label symbol table (string table).
pub const SEC_LABELS: u32 = 4;
/// Per-node label id, `u32::MAX` for text nodes (`u32 × n`).
pub const SEC_NODE_LABELS: u32 = 5;
/// Per-node parent id, `u32::MAX` for the root (`u32 × n`).
pub const SEC_NODE_PARENTS: u32 = 6;
/// All text content concatenated in document order (UTF-8).
pub const SEC_TEXT_BLOB: u32 = 7;
/// Byte offsets into the text blob plus sentinel (`u32 × (t + 1)`),
/// in document order of the text nodes.
pub const SEC_TEXT_OFFSETS: u32 = 8;
/// Node id per attribute entry, ascending (`u32 × a`).
pub const SEC_ATTR_NODES: u32 = 9;
/// Attribute names (string table, one per entry).
pub const SEC_ATTR_NAMES: u32 = 10;
/// Attribute values (string table, one per entry).
pub const SEC_ATTR_VALUES: u32 = 11;
/// One per role: name, spec text, binds, and the AccessView arrays
/// (`Record`-encoded; repeated section kind, one instance per role).
pub const SEC_ROLE: u32 = 12;
/// Child CSR offsets (`u32 × (n + 1)`, monotone).
pub const SEC_CHILD_OFFSETS: u32 = 13;
/// Child CSR ids, grouped by parent (`u32 × (n − 1)`).
pub const SEC_CHILD_IDS: u32 = 14;
/// Ids of every text node, ascending (`u32 × t`). Shared by the
/// document's compact storage and the index's text-node list.
pub const SEC_TEXT_NODE_IDS: u32 = 15;
/// Index: largest node id in each node's subtree (`u32 × n`).
pub const SEC_IDX_SUBTREE_END: u32 = 16;
/// Index: per-node depth in edges (`u32 × n`).
pub const SEC_IDX_DEPTH: u32 = 17;
/// Index: every element node in document order (`u32 × e`).
pub const SEC_IDX_ELEMENTS: u32 = 18;
/// Index: occurrence-list CSR offsets (`u32 × (labels + 1)`).
pub const SEC_IDX_LABEL_OFFSETS: u32 = 19;
/// Index: occurrence-list CSR ids, grouped by label (`u32 × e`).
pub const SEC_IDX_LABEL_IDS: u32 = 20;

/// Human name for a section kind (error messages, `lint`-style output).
pub fn section_name(kind: u32) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_DTD_TEXT => "dtd text",
        SEC_ROOT_NAME => "root name",
        SEC_LABELS => "labels",
        SEC_NODE_LABELS => "node labels",
        SEC_NODE_PARENTS => "node parents",
        SEC_TEXT_BLOB => "text blob",
        SEC_TEXT_OFFSETS => "text offsets",
        SEC_ATTR_NODES => "attr nodes",
        SEC_ATTR_NAMES => "attr names",
        SEC_ATTR_VALUES => "attr values",
        SEC_ROLE => "role",
        SEC_CHILD_OFFSETS => "child offsets",
        SEC_CHILD_IDS => "child ids",
        SEC_TEXT_NODE_IDS => "text node ids",
        SEC_IDX_SUBTREE_END => "index subtree ends",
        SEC_IDX_DEPTH => "index depths",
        SEC_IDX_ELEMENTS => "index elements",
        SEC_IDX_LABEL_OFFSETS => "index label offsets",
        SEC_IDX_LABEL_IDS => "index label ids",
        _ => "unknown",
    }
}

/// 64-bit FNV-1a folded over 8-byte words, four independent lanes per
/// 32-byte block (with the length mixed in and a zero-padded tail), so
/// checksumming runs at memory bandwidth: the lanes break the serial
/// multiply dependency chain that caps single-lane FNV. Not
/// cryptographic — this guards against torn writes and bit rot, not
/// adversaries.
pub fn checksum(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let len_mix = (bytes.len() as u64).wrapping_mul(PRIME);
    let mut lanes = [
        OFFSET ^ len_mix,
        OFFSET.rotate_left(17) ^ len_mix,
        OFFSET.rotate_left(34) ^ len_mix,
        OFFSET.rotate_left(51) ^ len_mix,
    ];
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        for (lane, w) in lanes.iter_mut().zip(b.chunks_exact(8)) {
            *lane = (*lane ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
        }
    }
    let mut h = lanes[0];
    for &lane in &lanes[1..] {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    let tail = blocks.remainder();
    let mut words = tail.chunks_exact(8);
    for w in &mut words {
        h = (h ^ u64::from_le_bytes(w.try_into().unwrap())).wrapping_mul(PRIME);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(PRIME);
    }
    h
}

/// Round `n` up to the next multiple of 8 (section payload alignment).
pub fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

// --- bulk array codecs ---

/// Bulk little-endian `u32` words → vec. On little-endian targets this
/// is a single `memcpy` into the pre-sized allocation; the element-wise
/// fallback only runs on big-endian hosts.
fn le_u32_words(bytes: &[u8]) -> Vec<u32> {
    debug_assert_eq!(bytes.len() % 4, 0);
    let n = bytes.len() / 4;
    #[cfg(target_endian = "little")]
    {
        let mut out = vec![0u32; n];
        // SAFETY: `out` owns `n * 4` writable bytes, `bytes` holds
        // exactly that many readable bytes, and the ranges are disjoint
        // (freshly allocated destination). u32 has no invalid bit
        // patterns, and on little-endian the byte order already matches.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 4);
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        bytes.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

/// Bulk little-endian `u64` words → vec (see [`le_u32_words`]).
fn le_u64_words(bytes: &[u8]) -> Vec<u64> {
    debug_assert_eq!(bytes.len() % 8, 0);
    let n = bytes.len() / 8;
    #[cfg(target_endian = "little")]
    {
        let mut out = vec![0u64; n];
        // SAFETY: same argument as `le_u32_words`.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 8);
        }
        out
    }
    #[cfg(not(target_endian = "little"))]
    {
        bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect()
    }
}

/// Decode a `u32` array section (one bulk copy, no per-element work).
pub fn decode_u32s(bytes: &[u8], what: &str) -> Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(Error::Malformed(format!(
            "{what}: {} bytes is not a whole number of u32 words",
            bytes.len()
        )));
    }
    Ok(le_u32_words(bytes))
}

/// Decode a `u64` array section.
pub fn decode_u64s(bytes: &[u8], what: &str) -> Result<Vec<u64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(Error::Malformed(format!(
            "{what}: {} bytes is not a whole number of u64 words",
            bytes.len()
        )));
    }
    Ok(le_u64_words(bytes))
}

/// Encode a `u32` array as section bytes.
pub fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode a `u64` array as section bytes.
pub fn encode_u64s(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a UTF-8 section.
pub fn decode_str<'a>(bytes: &'a [u8], what: &str) -> Result<&'a str> {
    std::str::from_utf8(bytes).map_err(|e| Error::Malformed(format!("{what}: invalid UTF-8: {e}")))
}

/// Encode a string table: `u64` count, `u64 × (count + 1)` byte
/// offsets, then the concatenated UTF-8 blob.
pub fn encode_string_table<S: AsRef<str>>(strings: &[S]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(strings.len() as u64).to_le_bytes());
    let mut off = 0u64;
    for s in strings {
        out.extend_from_slice(&off.to_le_bytes());
        off += s.as_ref().len() as u64;
    }
    out.extend_from_slice(&off.to_le_bytes());
    for s in strings {
        out.extend_from_slice(s.as_ref().as_bytes());
    }
    out
}

/// Decode a string table section.
pub fn decode_string_table(bytes: &[u8], what: &str) -> Result<Vec<String>> {
    let mut r = Reader::new(bytes, "string table");
    let count = r.u64()? as usize;
    let offsets = r.bytes(count.saturating_add(1).saturating_mul(8), "string offsets")?;
    let offsets = le_u64_words(offsets);
    let blob = r.rest();
    let blob = decode_str(blob, what)?;
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(Error::Malformed(format!("{what}: string offsets are not monotone")));
    }
    if offsets.last().copied().unwrap_or(0) as usize != blob.len() {
        return Err(Error::Malformed(format!(
            "{what}: string offsets end at {:?}, blob has {} bytes",
            offsets.last(),
            blob.len()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for w in offsets.windows(2) {
        let (lo, hi) = (w[0] as usize, w[1] as usize);
        if !blob.is_char_boundary(lo) || !blob.is_char_boundary(hi) {
            return Err(Error::Malformed(format!("{what}: string offset splits a UTF-8 char")));
        }
        out.push(blob[lo..hi].to_string());
    }
    Ok(out)
}

// --- nested record codec (role sections) ---

/// Append-only builder for composite (`SEC_ROLE`) payloads: a sequence
/// of length-prefixed fields, each padded to 8 bytes so array fields
/// stay word-aligned within the record.
#[derive(Default)]
pub struct Record {
    buf: Vec<u8>,
}

impl Record {
    /// Start an empty record.
    pub fn new() -> Record {
        Record::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn pad8(&mut self) {
        while !self.buf.len().is_multiple_of(8) {
            self.buf.push(0);
        }
    }

    /// Append one raw `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 field.
    pub fn str_field(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
        self.pad8();
    }

    /// Append a count-prefixed `u32` array field.
    pub fn u32_list(&mut self, vals: &[u32]) {
        self.u64(vals.len() as u64);
        for v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self.pad8();
    }

    /// Append a count-prefixed `u64` array field.
    pub fn u64_list(&mut self, vals: &[u64]) {
        self.u64(vals.len() as u64);
        for v in vals {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Bounds-checked sequential reader over a section payload; every read
/// that would run off the end becomes [`Error::Truncated`] naming the
/// field, never a panic.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Reader<'a> {
    /// Read `buf` from the start; `what` names the structure in errors.
    pub fn new(buf: &'a [u8], what: &'static str) -> Reader<'a> {
        Reader { buf, pos: 0, what }
    }

    fn pad8(&mut self) {
        self.pos = align8(self.pos).min(self.buf.len());
    }

    /// Take `n` raw bytes.
    pub fn bytes(&mut self, n: usize, field: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            Error::Truncated {
                what: format!("{}: {field}", self.what),
                needed: n,
                available: self.buf.len() - self.pos,
            }
        })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Read one `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.bytes(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Read a length-prefixed UTF-8 field (with its 8-byte padding).
    pub fn str_field(&mut self, field: &str) -> Result<&'a str> {
        let len = self.u64()? as usize;
        let bytes = self.bytes(len, field)?;
        self.pad8();
        decode_str(bytes, field)
    }

    /// Read a count-prefixed `u32` array field (with its padding).
    pub fn u32_list(&mut self, field: &str) -> Result<Vec<u32>> {
        let count = self.u64()? as usize;
        let bytes = self.bytes(count.saturating_mul(4), field)?;
        self.pad8();
        Ok(le_u32_words(bytes))
    }

    /// Read a count-prefixed `u32` array field, returning the byte range
    /// of its words within the reader's buffer instead of decoding —
    /// the zero-copy path views that range in place.
    pub fn u32_list_range(&mut self, field: &str) -> Result<std::ops::Range<usize>> {
        let count = self.u64()? as usize;
        let start = self.pos;
        self.bytes(count.saturating_mul(4), field)?;
        let end = self.pos;
        self.pad8();
        Ok(start..end)
    }

    /// Read a count-prefixed `u64` array field.
    pub fn u64_list(&mut self, field: &str) -> Result<Vec<u64>> {
        let count = self.u64()? as usize;
        let bytes = self.bytes(count.saturating_mul(8), field)?;
        Ok(le_u64_words(bytes))
    }

    /// Everything not yet consumed.
    pub fn rest(self) -> &'a [u8] {
        &self.buf[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_length_and_content_sensitive() {
        assert_eq!(checksum(b"hello world"), checksum(b"hello world"));
        assert_ne!(checksum(b"hello world"), checksum(b"hello worlc"));
        assert_ne!(checksum(b""), checksum(b"\0"));
        assert_ne!(checksum(b"\0\0\0\0\0\0\0\0"), checksum(b"\0\0\0\0\0\0\0\0\0"));
        // Tail handling: differing bytes beyond the last full word count.
        assert_ne!(checksum(b"12345678A"), checksum(b"12345678B"));
    }

    #[test]
    fn string_table_roundtrip() {
        let strings = ["", "a", "héllo", "x"];
        let enc = encode_string_table(&strings);
        let dec = decode_string_table(&enc, "test").unwrap();
        assert_eq!(dec, strings);
        assert!(decode_string_table(&enc[..enc.len() - 1], "test").is_err());
        assert!(decode_string_table(&enc[..4], "test").is_err());
    }

    #[test]
    fn record_reader_roundtrip_and_truncation() {
        let mut rec = Record::new();
        rec.u64(7);
        rec.str_field("role-name");
        rec.u32_list(&[1, 2, 3]);
        rec.u64_list(&[u64::MAX]);
        let bytes = rec.into_bytes();
        let mut r = Reader::new(&bytes, "role");
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.str_field("name").unwrap(), "role-name");
        assert_eq!(r.u32_list("list").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_list("words").unwrap(), vec![u64::MAX]);
        assert!(r.rest().is_empty());
        // Truncating anywhere yields Truncated, not a panic.
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut], "role");
            let result = (|| -> Result<()> {
                r.u64()?;
                r.str_field("name")?;
                r.u32_list("list")?;
                r.u64_list("words")?;
                Ok(())
            })();
            assert!(result.is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn align8_rounds_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
    }
}

//! Bounded admission queue for the serve daemon's worker pool.
//!
//! The accept loop pushes work with [`Bounded::try_push`], which fails
//! immediately when the queue is full — that failure becomes a 503 so
//! overload produces fast, explicit rejections instead of unbounded
//! memory growth and collapsing tail latency. Workers block in
//! [`Bounded::pop`] until work or shutdown arrives.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A fixed-capacity MPMC queue with explicit shutdown.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

struct Inner<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; the caller should shed the request.
    Full,
    /// The queue has been shut down; no new work is accepted.
    Shutdown,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items at a time.
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking; `Err(Full)` means shed the request.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.shutdown {
            return Err(PushError::Shutdown);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is shut down.
    /// Returns `None` only on shutdown with an empty queue, so enqueued
    /// work is always drained before workers exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Current depth (for /stats).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop accepting work and wake every blocked worker.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A panicking worker must not wedge the daemon; the queue state
        // (VecDeque + bool) is valid at every await point.
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_sheds() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        q.pop();
        q.try_push(3).unwrap();
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let q = Bounded::new(0);
        assert_eq!(q.try_push(1), Err(PushError::Full));
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_drains_backlog() {
        let q = Arc::new(Bounded::new(8));
        q.try_push(7).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give workers a moment to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        // Exactly one worker got the backlog item; the rest saw shutdown.
        assert_eq!(results, vec![None, None, Some(7)]);
        assert_eq!(q.try_push(9), Err(PushError::Shutdown));
    }
}

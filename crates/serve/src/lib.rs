//! `sxv serve` — a persistent multi-tenant secure-query daemon.
//!
//! One process hosts many `(role, document)` tenants over a single warm
//! engine set: every role gets one [`SecureEngine`] (derived view +
//! shared translation-plan and accessibility caches) that survives
//! across requests, so the per-query cost converges to plan-cache-hit +
//! evaluation instead of parse + derive + compile on every call, which
//! is what the one-shot CLI pays.
//!
//! The wire protocol is deliberately small — hand-rolled HTTP/1.1 and
//! JSON ([`http`], [`json`]), no dependencies:
//!
//! * `POST /query` `{"role": R, "doc": D, "query": Q}` → `{"answers":
//!   [...]}` where each answer line is byte-identical to the line
//!   `sxv query` would print for the same role/doc/query.
//! * `GET /stats` → per-tenant request counts, latency percentiles and
//!   per-role cache hit-rates.
//! * `GET /healthz`, `POST /shutdown`.
//!
//! Admission control: requests pass through a bounded queue
//! ([`queue::Bounded`]) drained by a fixed worker pool. A full queue
//! sheds with 503 immediately; a request whose deadline passes while
//! queued is answered 504 without doing the work. Overload therefore
//! degrades into fast explicit failures instead of collapsing latency.

pub mod http;
pub mod json;
pub mod queue;
pub mod stats;

use crate::http::{read_request, write_json, ReadError, Request};
use crate::json::{json_escape, Json};
use crate::queue::{Bounded, PushError};
use crate::stats::{elapsed_us, TenantStats};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};
use sxv_core::{derive_view, AccessSpec, Approach, PlanPolicy, PolicyRegistry, SecureEngine};
use sxv_xml::{DocIndex, Document};
use sxv_xpath::{parse as parse_xpath, AccessView};

/// Maximum simultaneously open connections; excess connections get an
/// immediate 503 and close.
const MAX_CONNECTIONS: usize = 256;

/// How long a connection handler blocks in a read before re-checking
/// the shutdown flag (keep-alive connections would otherwise pin the
/// process open forever).
const READ_POLL: Duration = Duration::from_millis(500);

/// Everything the daemon needs to start.
pub struct ServeConfig {
    /// `(role name, access spec)` tenant policies; the security view of
    /// each role is derived at boot and audited by registration.
    pub roles: Vec<(String, AccessSpec)>,
    /// `(doc name, document)` served documents, shared by all roles.
    pub docs: Vec<(String, Document)>,
    /// Bind address, e.g. `127.0.0.1:0` (port 0 picks a free port).
    pub addr: String,
    /// Query worker threads (≥ 1).
    pub workers: usize,
    /// Admission queue capacity; 0 sheds every request (useful in tests).
    pub queue_capacity: usize,
    /// Per-request deadline in milliseconds, measured from admission.
    pub timeout_ms: u64,
    /// Seconds between periodic per-tenant stats log lines (0 disables).
    pub stats_interval_secs: u64,
    /// Strict verification: every engine refuses plans whose static
    /// certificate has error findings; such requests get 403 instead of
    /// an answer.
    pub verify: bool,
    /// Pre-built structural indexes by doc name (e.g. loaded from an
    /// `.sxvpkg` package). Docs without one are served index-less, as
    /// before; a stale name is a boot error.
    pub indexes: Vec<(String, DocIndex)>,
    /// Pre-built `(role name, doc name, artifact)` accessibility views
    /// to seed each role engine's cache with at boot, so the first
    /// annotate-approach query over a packaged document builds nothing.
    pub preloaded_views: Vec<(String, String, Arc<AccessView>)>,
    /// Queries to pre-compile (and certify) for every role × approach at
    /// boot (`sxv serve --warm FILE`), so the first request for a known
    /// workload never pays translate + compile + certify. A query that
    /// fails to parse — or, under `verify`, fails certification for any
    /// role — is a boot error, surfaced before the listener accepts.
    pub warm_queries: Vec<String>,
}

impl ServeConfig {
    /// A config with serving defaults: 4 workers, queue depth 64,
    /// 2 s deadline, stats every 30 s, ephemeral localhost port.
    pub fn new(roles: Vec<(String, AccessSpec)>, docs: Vec<(String, Document)>) -> ServeConfig {
        ServeConfig {
            roles,
            docs,
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            timeout_ms: 2_000,
            stats_interval_secs: 30,
            verify: false,
            indexes: Vec::new(),
            preloaded_views: Vec::new(),
            warm_queries: Vec::new(),
        }
    }
}

/// One admitted query waiting for a worker.
struct Job {
    role_idx: usize,
    doc_idx: usize,
    query: String,
    approach: Approach,
    admitted: Instant,
    deadline: Instant,
    reply: mpsc::SyncSender<Reply>,
}

/// What a worker sends back to the connection handler.
struct Reply {
    status: u16,
    body: String,
}

/// Shared server state (everything handlers and workers touch).
struct ServerState<'a> {
    engines: Vec<SecureEngine<'a>>,
    role_names: Vec<String>,
    role_index: BTreeMap<String, usize>,
    docs: Vec<(String, Document)>,
    doc_index: BTreeMap<String, usize>,
    /// Structural index per doc (aligned with `docs`); `None` serves
    /// the walk path exactly as before.
    indexes: Vec<Option<DocIndex>>,
    tenants: Vec<TenantStats>, // role-major: role_idx * docs.len() + doc_idx
    queue: Bounded<Job>,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    started: Instant,
    timeout: Duration,
    /// Plans pre-compiled at boot from `--warm` (role × approach × query).
    warmed: usize,
}

impl ServerState<'_> {
    fn tenant(&self, role_idx: usize, doc_idx: usize) -> &TenantStats {
        &self.tenants[role_idx * self.docs.len() + doc_idx]
    }
}

/// Run the daemon until `POST /shutdown`. Sends the bound address on
/// `ready` once the listener is up, so in-process callers (tests, the
/// load generator) can boot the server on a background thread and learn
/// the ephemeral port. Blocks the calling thread for the server's
/// lifetime; returns after a clean shutdown has joined every worker.
pub fn run(config: ServeConfig, ready: mpsc::Sender<SocketAddr>) -> Result<(), String> {
    if config.roles.is_empty() {
        return Err("serve needs at least one --role".into());
    }
    if config.docs.is_empty() {
        return Err("serve needs at least one --doc".into());
    }
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    // Derive + audit every role's view up front; a bad policy fails the
    // boot, not the first request that touches it.
    let mut registry = PolicyRegistry::new();
    let mut role_names = Vec::new();
    for (name, spec) in config.roles {
        let view = derive_view(&spec).map_err(|e| format!("role {name:?}: {e}"))?;
        registry
            .register_view(name.clone(), spec, view)
            .map_err(|e| format!("role {name:?}: {e}"))?;
        role_names.push(name);
    }
    let engines: Vec<SecureEngine<'_>> = role_names
        .iter()
        .map(|name| {
            let spec = registry.spec(name).expect("registered above");
            let view = registry.view(name).expect("registered above");
            let mut engine = SecureEngine::new(spec, view);
            engine.set_verify(config.verify);
            engine
        })
        .collect();

    let role_index: BTreeMap<String, usize> =
        role_names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
    let doc_index: BTreeMap<String, usize> =
        config.docs.iter().enumerate().map(|(i, (n, _))| (n.clone(), i)).collect();
    let tenant_count = role_names.len() * config.docs.len();

    // Attach pre-built indexes and seed access caches with pre-built
    // artifacts (both typically from `.sxvpkg` packages): the first
    // query over a packaged tenant pays evaluation only.
    let mut indexes: Vec<Option<DocIndex>> = config.docs.iter().map(|_| None).collect();
    for (name, idx) in config.indexes {
        let &i = doc_index.get(&name).ok_or_else(|| format!("index for unknown doc {name:?}"))?;
        indexes[i] = Some(idx);
    }
    // Pre-compile the warm-list queries for every role × approach under
    // the serving plan policy, so known workloads start on the cache-hit
    // path. Certification happens as part of planning; under --verify a
    // warm query no role could ever answer fails the boot instead of
    // 403ing its first caller.
    let mut warmed = 0usize;
    for q in &config.warm_queries {
        let parsed = parse_xpath(q).map_err(|e| format!("warm query {q:?}: {e}"))?;
        for (role, engine) in role_names.iter().zip(&engines) {
            for approach in
                [Approach::Naive, Approach::Rewrite, Approach::Optimize, Approach::Annotate]
            {
                let (planned, _) = engine.plan_certified(&parsed, approach, PlanPolicy::ForceWalk);
                let planned =
                    planned.map_err(|e| format!("warm query {q:?} (role {role:?}): {e}"))?;
                if config.verify && !planned.cert.certified() {
                    return Err(format!(
                        "warm query {q:?} fails certification for role {role:?} ({approach:?})"
                    ));
                }
                warmed += 1;
            }
        }
    }

    for (role, doc_name, view) in config.preloaded_views {
        let &r = role_index
            .get(&role)
            .ok_or_else(|| format!("preloaded view for unknown role {role:?}"))?;
        let &d = doc_index
            .get(&doc_name)
            .ok_or_else(|| format!("preloaded view for unknown doc {doc_name:?}"))?;
        engines[r].preload_access_view(config.docs[d].1.doc_id(), view);
    }

    let state = ServerState {
        engines,
        role_names,
        role_index,
        docs: config.docs,
        doc_index,
        indexes,
        tenants: (0..tenant_count).map(|_| TenantStats::default()).collect(),
        queue: Bounded::new(config.queue_capacity),
        shutdown: AtomicBool::new(false),
        connections: AtomicUsize::new(0),
        started: Instant::now(),
        timeout: Duration::from_millis(config.timeout_ms),
        warmed,
    };

    eprintln!(
        "sxv serve: listening on {addr} ({} roles × {} docs, {} workers, queue {}, timeout {}ms, \
         {} warmed plans{})",
        state.role_names.len(),
        state.docs.len(),
        config.workers,
        config.queue_capacity,
        config.timeout_ms,
        state.warmed,
        if config.verify { ", verify" } else { "" },
    );
    ready.send(addr).ok();

    std::thread::scope(|scope| {
        for _ in 0..config.workers {
            scope.spawn(|| worker_loop(&state));
        }
        if config.stats_interval_secs > 0 {
            scope.spawn(|| stats_logger(&state, config.stats_interval_secs));
        }
        // Accept loop; handlers are scoped threads so shutdown joins
        // everything before `run` returns.
        for conn in listener.incoming() {
            if state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            if state.connections.load(Ordering::SeqCst) >= MAX_CONNECTIONS {
                let mut stream = stream;
                let _ = write_json(&mut stream, 503, "{\"error\": \"too many connections\"}", true);
                continue;
            }
            state.connections.fetch_add(1, Ordering::SeqCst);
            scope.spawn(|| {
                handle_connection(&state, stream, addr);
                state.connections.fetch_sub(1, Ordering::SeqCst);
            });
        }
        state.queue.shutdown();
    });
    eprintln!("sxv serve: shut down after {:?}", state.started.elapsed());
    Ok(())
}

/// Worker: drain the admission queue until shutdown.
fn worker_loop(state: &ServerState<'_>) {
    while let Some(job) = state.queue.pop() {
        let tenant = state.tenant(job.role_idx, job.doc_idx);
        // Deadline check happens here — after queueing delay — so a
        // request that waited out its budget is shed without paying for
        // evaluation. There is no mid-execution cancellation; an
        // admitted-in-time query runs to completion.
        if Instant::now() >= job.deadline {
            tenant.record_timed_out();
            let body = "{\"error\": \"deadline expired before execution\"}".to_string();
            job.reply.send(Reply { status: 504, body }).ok();
            continue;
        }
        let reply = execute(state, &job);
        job.reply.send(reply).ok();
    }
}

/// Execute one admitted query and build the HTTP reply.
fn execute(state: &ServerState<'_>, job: &Job) -> Reply {
    let tenant = state.tenant(job.role_idx, job.doc_idx);
    let engine = &state.engines[job.role_idx];
    let (doc_name, doc) = &state.docs[job.doc_idx];
    let query = match parse_xpath(&job.query) {
        Ok(q) => q,
        Err(e) => {
            tenant.record_error();
            return Reply {
                status: 400,
                body: format!("{{\"error\": \"query parse: {}\"}}", json_escape(&e.to_string())),
            };
        }
    };
    let index = state.indexes[job.doc_idx].as_ref();
    match engine.answer_report_policy(doc, index, &query, job.approach, PlanPolicy::ForceWalk) {
        Ok((nodes, report)) => {
            // Answer lines are byte-identical to `sxv query` stdout:
            // `<label> value` for elements, `#text value` for text nodes.
            let answers: Vec<String> = nodes
                .iter()
                .map(|&node| match doc.label_opt(node) {
                    Some(label) => {
                        format!(
                            "\"{}\"",
                            json_escape(&format!("<{label}> {}", doc.string_value(node)))
                        )
                    }
                    None => {
                        format!("\"{}\"", json_escape(&format!("#text {}", doc.string_value(node))))
                    }
                })
                .collect();
            let latency_us = elapsed_us(job.admitted);
            tenant.record_ok(latency_us, report.cache_hit, u64::from(report.plan.fused_scan));
            Reply {
                status: 200,
                body: format!(
                    "{{\"role\": \"{}\", \"doc\": \"{}\", \"count\": {}, \
                     \"plan_cache_hit\": {}, \"latency_us\": {}, \"answers\": [{}]}}",
                    json_escape(&state.role_names[job.role_idx]),
                    json_escape(doc_name),
                    answers.len(),
                    report.cache_hit,
                    latency_us,
                    answers.join(", "),
                ),
            }
        }
        Err(e) => {
            tenant.record_error();
            // A certification refusal is the policy saying no, not a bad
            // request: surface it as 403 so clients can distinguish it.
            let status = match &e {
                sxv_core::Error::Uncertified { .. } => 403,
                _ => 400,
            };
            Reply { status, body: format!("{{\"error\": \"{}\"}}", json_escape(&e.to_string())) }
        }
    }
}

/// Serve one connection (keep-alive) until close, error, or shutdown.
fn handle_connection(state: &ServerState<'_>, stream: TcpStream, addr: SocketAddr) {
    stream.set_read_timeout(Some(READ_POLL)).ok();
    stream.set_nodelay(true).ok();
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = std::io::BufReader::new(peer);
    let mut stream = stream;
    loop {
        let req = match read_request(&mut reader) {
            Ok(req) => req,
            Err(ReadError::Eof) => return,
            Err(ReadError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle keep-alive connection; poll the shutdown flag.
                // (A client pausing mid-request past the poll interval
                // loses the request — acceptable for a trusted-client
                // daemon; all our clients write requests atomically.)
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(m)) => {
                let body = format!("{{\"error\": \"{}\"}}", json_escape(&m));
                let _ = write_json(&mut stream, 400, &body, true);
                return;
            }
            Err(ReadError::TooLarge(what)) => {
                let body = format!("{{\"error\": \"{what} too large\"}}");
                let _ = write_json(&mut stream, 413, &body, true);
                return;
            }
        };
        let close = req.close;
        let (status, body) = route(state, &req, addr);
        if write_json(&mut stream, status, &body, close).is_err() {
            return;
        }
        if close || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Dispatch one parsed request to its endpoint.
fn route(state: &ServerState<'_>, req: &Request, addr: SocketAddr) -> (u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"ok\": true}".into()),
        ("GET", "/stats") => (200, stats_json(state)),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.shutdown();
            // Unblock the accept loop so `run` can join and return.
            TcpStream::connect(addr).ok();
            (200, "{\"ok\": true, \"shutting_down\": true}".into())
        }
        ("POST", "/query") => handle_query(state, &req.body),
        ("GET" | "POST", _) => (404, "{\"error\": \"no such endpoint\"}".into()),
        _ => (405, "{\"error\": \"method not allowed\"}".into()),
    }
}

/// Parse, admit, and await one `/query` request.
fn handle_query(state: &ServerState<'_>, body: &[u8]) -> (u16, String) {
    let err = |status: u16, msg: &str| (status, format!("{{\"error\": \"{}\"}}", json_escape(msg)));
    let Ok(text) = std::str::from_utf8(body) else {
        return err(400, "body is not utf-8");
    };
    let parsed = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return err(400, &format!("body is not valid JSON: {e}")),
    };
    let Some(role) = parsed.get("role").and_then(Json::as_str) else {
        return err(400, "missing string field \"role\"");
    };
    let Some(doc) = parsed.get("doc").and_then(Json::as_str) else {
        return err(400, "missing string field \"doc\"");
    };
    let Some(query) = parsed.get("query").and_then(Json::as_str) else {
        return err(400, "missing string field \"query\"");
    };
    let approach = match parsed.get("approach").and_then(Json::as_str) {
        None | Some("optimize") => Approach::Optimize,
        Some("naive") => Approach::Naive,
        Some("rewrite") => Approach::Rewrite,
        Some("annotate") => Approach::Annotate,
        Some(other) => return err(400, &format!("unknown approach {other:?}")),
    };
    let Some(&role_idx) = state.role_index.get(role) else {
        return err(404, &format!("unknown role {role:?}"));
    };
    let Some(&doc_idx) = state.doc_index.get(doc) else {
        return err(404, &format!("unknown doc {doc:?}"));
    };

    let admitted = Instant::now();
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        role_idx,
        doc_idx,
        query: query.to_string(),
        approach,
        admitted,
        deadline: admitted + state.timeout,
        reply: tx,
    };
    match state.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full) => {
            state.tenant(role_idx, doc_idx).record_rejected();
            return err(503, "queue full, request shed");
        }
        Err(PushError::Shutdown) => return err(503, "server is shutting down"),
    }
    match rx.recv() {
        Ok(reply) => (reply.status, reply.body),
        // The worker dropped the sender without replying (panic).
        Err(_) => err(500, "worker failed"),
    }
}

/// Build the `/stats` JSON document.
fn stats_json(state: &ServerState<'_>) -> String {
    let mut tenants = Vec::new();
    for (role_idx, role) in state.role_names.iter().enumerate() {
        for (doc_idx, (doc_name, _)) in state.docs.iter().enumerate() {
            let t = state.tenant(role_idx, doc_idx);
            let requests = t.requests.load(Ordering::Relaxed);
            if requests == 0 {
                continue; // keep /stats readable: only tenants with traffic
            }
            let lat = t.latency_summary();
            let uptime = state.started.elapsed().as_secs_f64().max(1e-9);
            tenants.push(format!(
                "{{\"role\": \"{}\", \"doc\": \"{}\", \"requests\": {}, \"ok\": {}, \
                 \"errors\": {}, \"rejected\": {}, \"timed_out\": {}, \"qps\": {:.2}, \
                 \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"plan_cache_hit_rate\": {:.4}, \"fused_ops\": {}}}",
                json_escape(role),
                json_escape(doc_name),
                requests,
                t.ok.load(Ordering::Relaxed),
                t.errors.load(Ordering::Relaxed),
                t.rejected.load(Ordering::Relaxed),
                t.timed_out.load(Ordering::Relaxed),
                t.ok.load(Ordering::Relaxed) as f64 / uptime,
                lat.p50_us,
                lat.p95_us,
                lat.p99_us,
                lat.max_us,
                t.plan_hit_rate(),
                t.fused_ops.load(Ordering::Relaxed),
            ));
        }
    }
    let mut roles = Vec::new();
    for (role_idx, role) in state.role_names.iter().enumerate() {
        let cache = state.engines[role_idx].cache_stats();
        let access = state.engines[role_idx].access_stats();
        roles.push(format!(
            "{{\"role\": \"{}\", \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \
             \"entries\": {}, \"plans_compiled\": {}, \"plans_recompiled\": {}, \
             \"hit_rate\": {:.4}}}, \
             \"certify\": {{\"certified\": {}, \"failures\": {}, \"micros\": {}}}, \
             \"access_cache\": {{\"builds\": {}, \"hits\": {}, \"entries\": {}}}}}",
            json_escape(role),
            cache.hits,
            cache.misses,
            cache.entries,
            cache.plans_compiled,
            cache.plans_recompiled,
            cache.hit_rate(),
            cache.plans_certified,
            cache.certify_failures,
            cache.certify_micros,
            access.builds,
            access.hits,
            access.entries,
        ));
    }
    format!(
        "{{\"uptime_secs\": {:.1}, \"queue_depth\": {}, \"open_connections\": {}, \
         \"warmed\": {}, \"tenants\": [{}], \"roles\": [{}]}}",
        state.started.elapsed().as_secs_f64(),
        state.queue.len(),
        state.connections.load(Ordering::SeqCst),
        state.warmed,
        tenants.join(", "),
        roles.join(", "),
    )
}

/// Periodic per-tenant log lines (one per tenant with traffic).
fn stats_logger(state: &ServerState<'_>, interval_secs: u64) {
    let tick = Duration::from_millis(200);
    let mut elapsed = Duration::ZERO;
    loop {
        std::thread::sleep(tick);
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        elapsed += tick;
        if elapsed < Duration::from_secs(interval_secs) {
            continue;
        }
        elapsed = Duration::ZERO;
        for (role_idx, role) in state.role_names.iter().enumerate() {
            for (doc_idx, (doc_name, _)) in state.docs.iter().enumerate() {
                let t = state.tenant(role_idx, doc_idx);
                let requests = t.requests.load(Ordering::Relaxed);
                if requests == 0 {
                    continue;
                }
                let lat = t.latency_summary();
                eprintln!(
                    "sxv serve: tenant {role}/{doc_name} requests={requests} ok={} \
                     rejected={} timed_out={} p50={}us p99={}us plan_hit_rate={:.1}%",
                    t.ok.load(Ordering::Relaxed),
                    t.rejected.load(Ordering::Relaxed),
                    t.timed_out.load(Ordering::Relaxed),
                    lat.p50_us,
                    lat.p99_us,
                    100.0 * t.plan_hit_rate(),
                );
            }
        }
    }
}

/// Build the JSON body for a `/query` request (client-side helper used
/// by the load generator, the smoke script, and the integration tests).
pub fn query_body(role: &str, doc: &str, query: &str) -> String {
    format!(
        "{{\"role\": \"{}\", \"doc\": \"{}\", \"query\": \"{}\"}}",
        json_escape(role),
        json_escape(doc),
        json_escape(query),
    )
}

/// Pull the `answers` array out of a 200 `/query` response body.
pub fn parse_answers(body: &str) -> Result<Vec<String>, String> {
    let v = Json::parse(body)?;
    match v.get("answers") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|a| a.as_str().map(str::to_string).ok_or_else(|| "non-string answer".into()))
            .collect(),
        _ => Err(format!("no answers array in {body}")),
    }
}

//! Per-tenant observability for the serve daemon.
//!
//! Every `(role, doc)` tenant gets a [`TenantStats`]: lock-free request
//! counters plus a small mutex-guarded ring of recent latencies from
//! which `/stats` computes p50/p95/p99. The ring keeps the daemon's
//! memory bounded no matter how long it runs; percentiles describe the
//! recent window, counters describe the whole lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many recent latency samples back the percentile estimates.
const LATENCY_WINDOW: usize = 4096;

/// Counters and recent latencies for one `(role, doc)` tenant.
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Requests admitted for this tenant (every outcome below).
    pub requests: AtomicU64,
    /// Requests answered successfully (HTTP 200).
    pub ok: AtomicU64,
    /// Requests that failed inside the engine (HTTP 400/500).
    pub errors: AtomicU64,
    /// Requests shed at admission because the queue was full (HTTP 503).
    pub rejected: AtomicU64,
    /// Requests whose deadline expired before a worker ran them (504).
    pub timed_out: AtomicU64,
    /// Translation-plan cache hits observed on this tenant's answers.
    pub plan_hits: AtomicU64,
    /// Translation-plan cache misses observed on this tenant's answers.
    pub plan_misses: AtomicU64,
    /// Fused-scan operators executed across this tenant's answered
    /// queries (how much of the workload runs on the streaming path).
    pub fused_ops: AtomicU64,
    ring: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

/// A percentile summary over the recent latency window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples currently in the window.
    pub count: usize,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum latency in the window, microseconds.
    pub max_us: u64,
}

impl TenantStats {
    /// Record one completed (200) request, its latency, and how many
    /// fused-scan operators its plan executed.
    pub fn record_ok(&self, latency_us: u64, plan_cache_hit: bool, fused_ops: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.ok.fetch_add(1, Ordering::Relaxed);
        if plan_cache_hit {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.fused_ops.fetch_add(fused_ops, Ordering::Relaxed);
        self.push_latency(latency_us);
    }

    /// Record one request that failed in the engine or parser.
    pub fn record_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request shed at admission (queue full).
    pub fn record_rejected(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request whose deadline expired before execution.
    pub fn record_timed_out(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    fn push_latency(&self, latency_us: u64) {
        let mut ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if ring.samples_us.len() < LATENCY_WINDOW {
            ring.samples_us.push(latency_us);
        } else {
            let slot = ring.next;
            ring.samples_us[slot] = latency_us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Percentiles over the recent window.
    pub fn latency_summary(&self) -> LatencySummary {
        let ring = match self.ring.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let mut sorted = ring.samples_us.clone();
        drop(ring);
        if sorted.is_empty() {
            return LatencySummary::default();
        }
        sorted.sort_unstable();
        let pick = |p: f64| {
            let idx = ((sorted.len() as f64) * p).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            count: sorted.len(),
            p50_us: pick(0.50),
            p95_us: pick(0.95),
            p99_us: pick(0.99),
            max_us: sorted.last().copied().unwrap_or_default(),
        }
    }

    /// Plan-cache hit rate observed on this tenant's answered requests.
    pub fn plan_hit_rate(&self) -> f64 {
        let hits = self.plan_hits.load(Ordering::Relaxed);
        let total = hits + self.plan_misses.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// Elapsed time since `start`, saturated into whole microseconds.
pub fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_outcomes() {
        let t = TenantStats::default();
        t.record_ok(100, true, 2);
        t.record_ok(300, false, 1);
        t.record_error();
        t.record_rejected();
        t.record_timed_out();
        assert_eq!(t.requests.load(Ordering::Relaxed), 5);
        assert_eq!(t.ok.load(Ordering::Relaxed), 2);
        assert_eq!(t.fused_ops.load(Ordering::Relaxed), 3);
        assert_eq!(t.errors.load(Ordering::Relaxed), 1);
        assert_eq!(t.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(t.timed_out.load(Ordering::Relaxed), 1);
        assert!((t.plan_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_on_known_distribution() {
        let t = TenantStats::default();
        for us in 1..=100u64 {
            t.record_ok(us, true, 0);
        }
        let s = t.latency_summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p95_us, 95);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
    }

    #[test]
    fn ring_is_bounded_and_keeps_recent_samples() {
        let t = TenantStats::default();
        // Overfill the window with slow samples, then refill with fast
        // ones; the summary must reflect the recent (fast) window.
        for _ in 0..LATENCY_WINDOW {
            t.record_ok(1_000_000, true, 0);
        }
        for _ in 0..LATENCY_WINDOW {
            t.record_ok(10, true, 0);
        }
        let s = t.latency_summary();
        assert_eq!(s.count, LATENCY_WINDOW);
        assert_eq!(s.max_us, 10);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(TenantStats::default().latency_summary(), LatencySummary::default());
    }
}

//! A deliberately small HTTP/1.1 implementation: enough of the protocol
//! for a JSON API daemon (request line + headers + `Content-Length`
//! bodies, persistent connections) and a matching blocking client used
//! by the load generator and the integration tests. No chunked
//! encoding, no TLS, no multipart — requests that need them get a clear
//! error instead of undefined behavior.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// True when the client asked to close the connection.
    pub close: bool,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream between requests (keep-alive hang-up).
    Eof,
    /// Socket error or timeout.
    Io(std::io::Error),
    /// The bytes were not a well-formed request; respond 400 and close.
    Malformed(String),
    /// The head or body exceeded the configured bounds; respond 413.
    TooLarge(&'static str),
}

/// Read one request from a buffered connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut head = String::new();
    // Request line.
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Eof),
        Ok(_) => {}
        Err(e) => return Err(ReadError::Io(e)),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("bad request line {:?}", line.trim_end())));
    }
    // Headers.
    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => return Err(ReadError::Malformed("eof inside headers".into())),
            Ok(_) => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
        head.push_str(&h);
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge("header block"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header {h:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    close = true;
                } else if v.contains("keep-alive") {
                    close = false;
                }
            }
            "transfer-encoding" => {
                return Err(ReadError::Malformed("chunked bodies are not supported".into()));
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(ReadError::Io)?;
    }
    Ok(Request { method, path, body, close })
}

/// Reason phrase for the status codes this daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Write one JSON response (adds Content-Length; flushes).
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}\r\n",
        reason(status),
        body.len(),
        if close { "Connection: close\r\n" } else { "" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A persistent blocking HTTP/1.1 client connection (load generator and
/// test harness side of the protocol above).
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:8642`) with a read timeout.
    pub fn connect(addr: &str, timeout: Duration) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream) })
    }

    /// Issue one request; returns `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: sxv\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    /// POST a JSON body to `path`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// GET `path`.
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(format!("bad status line {line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            if self.reader.read_line(&mut h)? == 0 {
                return Err(bad("eof inside response headers".into()));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((name, value)) = h.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length =
                        value.trim().parse().map_err(|_| bad(format!("bad length {value:?}")))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        String::from_utf8(body).map(|b| (status, b)).map_err(|e| bad(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> Result<Request, ReadError> {
        // Push raw bytes through a real socket pair so the parser is
        // tested against the exact reader type the server uses.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let req = read_request(&mut reader);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip("POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"hello world");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn header_names_are_case_insensitive_and_close_honored() {
        let req =
            roundtrip("GET /stats HTTP/1.1\r\ncOnNeCtIoN: Close\r\nCONTENT-LENGTH: 0\r\n\r\n")
                .unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.close);
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        assert!(matches!(roundtrip("FLAGRANT\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            roundtrip("GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(roundtrip(""), Err(ReadError::Eof)));
    }

    #[test]
    fn oversized_bodies_are_bounded() {
        let head = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(roundtrip(&head), Err(ReadError::TooLarge(_))));
    }
}

//! Minimal JSON: a recursive-descent parser for request bodies and an
//! escape helper for responses. Hand-rolled because the workspace takes
//! no external dependencies; covers the full value grammar (objects,
//! arrays, strings with escapes, numbers, booleans, null) so malformed
//! bodies fail with a message instead of a panic.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; request fields we read are small).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, key-sorted for deterministic iteration.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parse one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a JSON string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole JSON number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", want as char, self.pos))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.eat_word("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_word("null").map(|()| Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs are not needed by any caller;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe: we track a
                    // byte cursor into a str, so slice at char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-utf-8 number at byte {start}"))?;
        text.parse::<f64>().map(Json::Number).map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

pub use sxv_xml::json_escape;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shapes() {
        let v = Json::parse(
            r#"{"role": "nurse", "doc": "d1", "query": "//patient/name", "timeout_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(v.get("role").and_then(Json::as_str), Some("nurse"));
        assert_eq!(v.get("timeout_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v = Json::parse(r#"{"a": [1, true, null, "x\"y\n"], "b": {"c": -2.5}}"#).unwrap();
        match v.get("a") {
            Some(Json::Array(items)) => {
                assert_eq!(items.len(), 4);
                assert_eq!(items[3], Json::String("x\"y\n".into()));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Number(-2.5)));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "{\"a\" 1}", "[1,]", "{\"a\":1} x", "\"unterminated", "nul"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn malformed_numbers_error_instead_of_panicking() {
        for bad in ["-", "1.2.3", "1e", "--5", "-e3"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let raw = "line\n\"quoted\"\tand \\ backslash";
        let parsed = Json::parse(&format!("\"{}\"", json_escape(raw))).unwrap();
        assert_eq!(parsed, Json::String(raw.into()));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"héllo ✓\"").unwrap();
        assert_eq!(v, Json::String("héllo ✓".into()));
    }
}

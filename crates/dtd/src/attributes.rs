//! Attribute-list declarations (`<!ATTLIST …>`).
//!
//! The paper scopes attributes out ("they can be easily incorporated");
//! this module incorporates them: declarations parse into [`AttDef`]s
//! attached to element types, instances validate against them, and the
//! security layer in `sxv-core` builds attribute-level access control on
//! top.
//!
//! Supported declaration forms (types are not enforced beyond presence —
//! the paper's model has no typed values):
//!
//! ```text
//! <!ATTLIST elem attr CDATA #REQUIRED>
//! <!ATTLIST elem attr CDATA #IMPLIED>
//! <!ATTLIST elem attr (yes | no) "no">
//! <!ATTLIST elem attr CDATA #FIXED "v">
//! ```

use crate::error::{Error, Result};
use crate::model::GeneralDtd;
use sxv_xml::{Document, NodeId};

/// One declared attribute of an element type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttDef {
    /// Attribute name.
    pub name: String,
    /// `#REQUIRED` — the attribute must be present on every instance.
    pub required: bool,
    /// Default (or `#FIXED`) value, if declared.
    pub default: Option<String>,
    /// Allowed values for enumerated types (`(yes | no)`); empty = any.
    pub allowed: Vec<String>,
}

impl AttDef {
    /// A plain optional CDATA attribute.
    pub fn optional(name: impl Into<String>) -> AttDef {
        AttDef { name: name.into(), required: false, default: None, allowed: Vec::new() }
    }

    /// A required CDATA attribute.
    pub fn required(name: impl Into<String>) -> AttDef {
        AttDef { name: name.into(), required: true, default: None, allowed: Vec::new() }
    }
}

/// Validate the attributes of every element of `doc` against the
/// declarations of `dtd`: required attributes present, enumerated values
/// in range, and no undeclared attributes.
pub fn validate_attributes(dtd: &GeneralDtd, doc: &Document) -> Result<()> {
    for id in doc.all_ids() {
        let Some(label) = doc.label_opt(id) else { continue };
        let defs = dtd.attribute_defs(label);
        for def in defs {
            match doc.attribute(id, &def.name) {
                None if def.required => {
                    return Err(invalid(
                        doc,
                        id,
                        format!("missing required attribute {}", def.name),
                    ));
                }
                Some(v) if !def.allowed.is_empty() && !def.allowed.iter().any(|a| a == v) => {
                    return Err(invalid(
                        doc,
                        id,
                        format!("attribute {}=\"{v}\" not in {:?}", def.name, def.allowed),
                    ));
                }
                _ => {}
            }
        }
        for (name, _) in doc.attributes(id) {
            if !defs.iter().any(|d| &d.name == name) {
                return Err(invalid(doc, id, format!("undeclared attribute {name}")));
            }
        }
    }
    Ok(())
}

fn invalid(doc: &Document, id: NodeId, message: String) -> Error {
    Error::Invalid { node: format!("<{}>", doc.label_opt(id).unwrap_or("#text")), message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_general_dtd;
    use sxv_xml::parse as parse_xml;

    fn dtd() -> GeneralDtd {
        parse_general_dtd(
            r#"<!ELEMENT r (a*)>
<!ELEMENT a (#PCDATA)>
<!ATTLIST r version CDATA #REQUIRED>
<!ATTLIST a id CDATA #REQUIRED>
<!ATTLIST a kind (big | small) "small">
<!ATTLIST a note CDATA #IMPLIED>"#,
            "r",
        )
        .unwrap()
    }

    #[test]
    fn attlist_parses_into_defs() {
        let d = dtd();
        let r_defs = d.attribute_defs("r");
        assert_eq!(r_defs.len(), 1);
        assert!(r_defs[0].required);
        let a_defs = d.attribute_defs("a");
        assert_eq!(a_defs.len(), 3);
        let kind = a_defs.iter().find(|x| x.name == "kind").unwrap();
        assert_eq!(kind.default.as_deref(), Some("small"));
        assert_eq!(kind.allowed, ["big", "small"]);
        assert!(d.attribute_defs("zzz").is_empty());
    }

    #[test]
    fn valid_attributes_pass() {
        let d = dtd();
        let doc =
            parse_xml(r#"<r version="1"><a id="x" kind="big">t</a><a id="y">u</a></r>"#).unwrap();
        validate_attributes(&d, &doc).unwrap();
    }

    #[test]
    fn missing_required_fails() {
        let d = dtd();
        let doc = parse_xml(r#"<r><a id="x">t</a></r>"#).unwrap();
        let e = validate_attributes(&d, &doc).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
    }

    #[test]
    fn enumerated_value_checked() {
        let d = dtd();
        let doc = parse_xml(r#"<r version="1"><a id="x" kind="huge">t</a></r>"#).unwrap();
        assert!(validate_attributes(&d, &doc).is_err());
    }

    #[test]
    fn undeclared_attribute_fails() {
        let d = dtd();
        let doc = parse_xml(r#"<r version="1" bogus="1"/>"#).unwrap();
        let e = validate_attributes(&d, &doc).unwrap_err();
        assert!(e.to_string().contains("bogus"), "{e}");
    }
}

//! General regular-expression content models and Brzozowski derivatives.
//!
//! [`Content`] mirrors what `<!ELEMENT …>` declarations can express:
//! `EMPTY`, `(#PCDATA)`, names, sequences, choices and the `?`/`*`/`+`
//! postfix operators. Matching a children-label sequence against a content
//! model uses Brzozowski derivatives, which keeps validation simple,
//! allocation-light and obviously correct (no NFA construction needed).

use std::collections::BTreeSet;
use std::fmt;

/// Token label used for text children when matching content models.
pub const PCDATA_LABEL: &str = "#PCDATA";

/// A general element content model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Content {
    /// `EMPTY` — no children allowed.
    Empty,
    /// `(#PCDATA)` — zero or more text children, no element children.
    PcData,
    /// A single element-type name.
    Name(String),
    /// `(a, b, …)` — concatenation, in order.
    Seq(Vec<Content>),
    /// `(a | b | …)` — disjunction.
    Choice(Vec<Content>),
    /// `x*` — zero or more.
    Star(Box<Content>),
    /// `x+` — one or more.
    Plus(Box<Content>),
    /// `x?` — zero or one.
    Opt(Box<Content>),
}

impl Content {
    /// True iff the empty sequence matches this model.
    pub fn nullable(&self) -> bool {
        match self {
            Content::Empty | Content::PcData => true,
            Content::Name(_) => false,
            Content::Seq(items) => items.iter().all(Content::nullable),
            Content::Choice(items) => items.iter().any(Content::nullable),
            Content::Star(_) | Content::Opt(_) => true,
            Content::Plus(inner) => inner.nullable(),
        }
    }

    /// Brzozowski derivative of the model with respect to `label`.
    ///
    /// The result matches exactly the suffixes `w` such that `label·w`
    /// matches `self`. `Content::Choice(vec![])` is the empty language.
    pub fn derivative(&self, label: &str) -> Content {
        match self {
            Content::Empty => Content::none(),
            Content::PcData => {
                if label == PCDATA_LABEL {
                    Content::PcData
                } else {
                    Content::none()
                }
            }
            Content::Name(n) => {
                if n == label {
                    Content::Empty
                } else {
                    Content::none()
                }
            }
            Content::Seq(items) => {
                // d(xy) = d(x)y  |  (x nullable ? d(y) : ∅), generalized.
                let mut alternatives = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    let d = item.derivative(label);
                    if !d.is_none() {
                        let mut rest = vec![d];
                        rest.extend(items[i + 1..].iter().cloned());
                        alternatives.push(Content::seq(rest));
                    }
                    if !item.nullable() {
                        break;
                    }
                }
                Content::choice(alternatives)
            }
            Content::Choice(items) => {
                Content::choice(items.iter().map(|i| i.derivative(label)).collect())
            }
            Content::Star(inner) => {
                let d = inner.derivative(label);
                if d.is_none() {
                    Content::none()
                } else {
                    Content::seq(vec![d, Content::Star(inner.clone())])
                }
            }
            Content::Plus(inner) => {
                // x+ = x x*
                let d = inner.derivative(label);
                if d.is_none() {
                    Content::none()
                } else {
                    Content::seq(vec![d, Content::Star(inner.clone())])
                }
            }
            Content::Opt(inner) => inner.derivative(label),
        }
    }

    /// Match a full sequence of child labels against this model.
    pub fn matches<'a>(&self, labels: impl IntoIterator<Item = &'a str>) -> bool {
        let mut current = self.clone();
        for label in labels {
            current = current.derivative(label);
            if current.is_none() {
                return false;
            }
        }
        current.nullable()
    }

    /// The empty language (no word matches).
    pub fn none() -> Content {
        Content::Choice(Vec::new())
    }

    /// True iff this is the canonical empty language.
    pub fn is_none(&self) -> bool {
        matches!(self, Content::Choice(v) if v.is_empty())
    }

    /// Smart sequence constructor: flattens, drops `Empty` units,
    /// propagates the empty language.
    pub fn seq(items: Vec<Content>) -> Content {
        let mut out = Vec::new();
        for item in items {
            if item.is_none() {
                return Content::none();
            }
            match item {
                Content::Empty => {}
                Content::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Content::Empty,
            1 => out.pop().unwrap(),
            _ => Content::Seq(out),
        }
    }

    /// Smart choice constructor: flattens nested choices, removes exact
    /// duplicates, drops empty-language branches.
    pub fn choice(items: Vec<Content>) -> Content {
        let mut out: Vec<Content> = Vec::new();
        for item in items {
            match item {
                Content::Choice(inner) => {
                    for i in inner {
                        if !out.contains(&i) {
                            out.push(i);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Content::none(),
            1 => out.pop().unwrap(),
            _ => Content::Choice(out),
        }
    }

    /// All element-type names referenced by this model (excludes `#PCDATA`).
    pub fn referenced_names(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Content::Empty | Content::PcData => {}
            Content::Name(n) => {
                out.insert(n.as_str());
            }
            Content::Seq(items) | Content::Choice(items) => {
                for i in items {
                    i.collect_names(out);
                }
            }
            Content::Star(i) | Content::Plus(i) | Content::Opt(i) => i.collect_names(out),
        }
    }

    /// True iff this model can produce text children.
    pub fn allows_text(&self) -> bool {
        match self {
            Content::PcData => true,
            Content::Empty | Content::Name(_) => false,
            Content::Seq(items) | Content::Choice(items) => items.iter().any(Content::allows_text),
            Content::Star(i) | Content::Plus(i) | Content::Opt(i) => i.allows_text(),
        }
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Content::Empty => write!(f, "EMPTY"),
            Content::PcData => write!(f, "(#PCDATA)"),
            Content::Name(n) => write!(f, "{n}"),
            Content::Seq(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Content::Choice(items) if items.is_empty() => write!(f, "<none>"),
            Content::Choice(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
            Content::Star(i) => write!(f, "{i}*"),
            Content::Plus(i) => write!(f, "{i}+"),
            Content::Opt(i) => write!(f, "{i}?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Content {
        Content::Name(n.into())
    }

    #[test]
    fn nullable_basics() {
        assert!(Content::Empty.nullable());
        assert!(Content::PcData.nullable());
        assert!(!name("a").nullable());
        assert!(Content::Star(Box::new(name("a"))).nullable());
        assert!(Content::Opt(Box::new(name("a"))).nullable());
        assert!(!Content::Plus(Box::new(name("a"))).nullable());
        assert!(!Content::none().nullable());
    }

    #[test]
    fn seq_matching() {
        let m = Content::Seq(vec![name("a"), name("b")]);
        assert!(m.matches(["a", "b"]));
        assert!(!m.matches(["a"]));
        assert!(!m.matches(["b", "a"]));
        assert!(!m.matches(["a", "b", "b"]));
        assert!(!m.matches([]));
    }

    #[test]
    fn choice_matching() {
        let m = Content::Choice(vec![name("a"), name("b")]);
        assert!(m.matches(["a"]));
        assert!(m.matches(["b"]));
        assert!(!m.matches(["c"]));
        assert!(!m.matches(["a", "b"]));
        assert!(!m.matches([]));
    }

    #[test]
    fn star_matching() {
        let m = Content::Star(Box::new(name("a")));
        assert!(m.matches([]));
        assert!(m.matches(["a"]));
        assert!(m.matches(["a", "a", "a"]));
        assert!(!m.matches(["a", "b"]));
    }

    #[test]
    fn plus_matching() {
        let m = Content::Plus(Box::new(name("a")));
        assert!(!m.matches([]));
        assert!(m.matches(["a"]));
        assert!(m.matches(["a", "a"]));
    }

    #[test]
    fn opt_matching() {
        let m = Content::Opt(Box::new(name("a")));
        assert!(m.matches([]));
        assert!(m.matches(["a"]));
        assert!(!m.matches(["a", "a"]));
    }

    #[test]
    fn nested_model_matching() {
        // (a, (b | c)*, d?)
        let m = Content::Seq(vec![
            name("a"),
            Content::Star(Box::new(Content::Choice(vec![name("b"), name("c")]))),
            Content::Opt(Box::new(name("d"))),
        ]);
        assert!(m.matches(["a"]));
        assert!(m.matches(["a", "b", "c", "b"]));
        assert!(m.matches(["a", "d"]));
        assert!(m.matches(["a", "c", "d"]));
        assert!(!m.matches(["b"]));
        assert!(!m.matches(["a", "d", "b"]));
    }

    #[test]
    fn pcdata_matching() {
        let m = Content::PcData;
        assert!(m.matches([]));
        assert!(m.matches([PCDATA_LABEL]));
        assert!(m.matches([PCDATA_LABEL, PCDATA_LABEL]));
        assert!(!m.matches(["a"]));
    }

    #[test]
    fn empty_model_rejects_children() {
        assert!(Content::Empty.matches([]));
        assert!(!Content::Empty.matches(["a"]));
        assert!(!Content::Empty.matches([PCDATA_LABEL]));
    }

    #[test]
    fn ambiguous_seq_with_nullable_prefix() {
        // (a?, a) — matches "a" and "a a".
        let m = Content::Seq(vec![Content::Opt(Box::new(name("a"))), name("a")]);
        assert!(m.matches(["a"]));
        assert!(m.matches(["a", "a"]));
        assert!(!m.matches([]));
        assert!(!m.matches(["a", "a", "a"]));
    }

    #[test]
    fn nullable_plus_over_nullable_inner() {
        // Regression (tests/property_substrate.proptest-regressions):
        // (ε+, ε) must match the empty word — ε+ denotes {ε}, so the
        // whole sequence is nullable. A Plus that hard-codes
        // non-nullability breaks this; nullability of x+ is exactly
        // nullability of x.
        let m = Content::Seq(vec![Content::Plus(Box::new(Content::Empty)), Content::Empty]);
        assert!(m.nullable());
        assert!(m.matches([]));
        assert!(!m.matches(["a"]));

        // ε+ alone.
        let p = Content::Plus(Box::new(Content::Empty));
        assert!(p.nullable());
        assert!(p.matches([]));

        // (a*)+ is nullable, ∅+ is not (∅+ = ∅ has no words at all).
        assert!(Content::Plus(Box::new(Content::Star(Box::new(name("a"))))).nullable());
        assert!(!Content::Plus(Box::new(Content::none())).nullable());
        assert!(!Content::Plus(Box::new(Content::none())).matches([]));
    }

    #[test]
    fn referenced_names_collects_all() {
        let m = Content::Seq(vec![
            name("a"),
            Content::Star(Box::new(Content::Choice(vec![name("b"), name("c")]))),
        ]);
        let names: Vec<&str> = m.referenced_names().into_iter().collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn display_forms() {
        let m = Content::Seq(vec![
            name("a"),
            Content::Star(Box::new(Content::Choice(vec![name("b"), name("c")]))),
        ]);
        assert_eq!(m.to_string(), "(a, (b | c)*)");
        assert_eq!(Content::PcData.to_string(), "(#PCDATA)");
        assert_eq!(Content::Empty.to_string(), "EMPTY");
    }

    #[test]
    fn smart_constructors_canonicalize() {
        assert_eq!(Content::seq(vec![]), Content::Empty);
        assert_eq!(Content::seq(vec![name("a")]), name("a"));
        assert_eq!(Content::seq(vec![name("a"), Content::none()]), Content::none());
        assert_eq!(Content::choice(vec![name("a"), name("a")]), name("a"));
        assert_eq!(Content::choice(vec![]), Content::none());
    }

    #[test]
    fn allows_text() {
        assert!(Content::PcData.allows_text());
        assert!(!name("a").allows_text());
        assert!(Content::Seq(vec![name("a"), Content::PcData]).allows_text());
    }
}

//! The DTD graph of §2: one node per element type, edges for the
//! parent/child relation, with reachability, recursion detection,
//! topological order and minimum-instance-height analyses.

use crate::normal::{Dtd, NormalContent};
use std::collections::{BTreeSet, HashMap};

/// Precomputed graph over a normal-form [`Dtd`].
///
/// Element types are addressed by dense indices for cheap set operations;
/// [`DtdGraph::index_of`]/[`DtdGraph::name_of`] convert.
#[derive(Debug, Clone)]
pub struct DtdGraph {
    names: Vec<String>,
    index: HashMap<String, usize>,
    /// Unique child types per node, in production order.
    children: Vec<Vec<usize>>,
    /// Inverse edges.
    parents: Vec<Vec<usize>>,
    root: usize,
    recursive: Vec<bool>,
}

impl DtdGraph {
    /// Build the graph for a DTD.
    pub fn new(dtd: &Dtd) -> Self {
        let names: Vec<String> = dtd.productions().iter().map(|(n, _)| n.clone()).collect();
        let index: HashMap<String, usize> =
            names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
        let mut children = vec![Vec::new(); names.len()];
        let mut parents = vec![Vec::new(); names.len()];
        for (i, (_, content)) in dtd.productions().iter().enumerate() {
            let mut seen = BTreeSet::new();
            for child in content.child_types() {
                let j = index[child];
                if seen.insert(j) {
                    children[i].push(j);
                    parents[j].push(i);
                }
            }
        }
        let root = index[dtd.root()];
        let recursive = find_recursive(&children);
        DtdGraph { names, index, children, parents, root, recursive }
    }

    /// Number of element types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff the graph has no nodes (not constructible from a valid DTD).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Dense index of an element type.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Element-type name at a dense index.
    pub fn name_of(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Root node index.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Child node indices of `i`, unique, in production order.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Parent node indices of `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// True iff the type participates in a cycle (directly or indirectly
    /// defined in terms of itself) — the paper's notion of recursion.
    pub fn is_recursive_type(&self, i: usize) -> bool {
        self.recursive[i]
    }

    /// True iff the DTD is recursive (any type on a cycle).
    pub fn is_recursive(&self) -> bool {
        self.recursive.iter().any(|&r| r)
    }

    /// All nodes reachable from `from` (excluding `from` unless on a cycle
    /// through it), as a sorted set of indices.
    pub fn reachable_from(&self, from: usize) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let mut stack: Vec<usize> = self.children[from].to_vec();
        while let Some(n) = stack.pop() {
            if out.insert(n) {
                stack.extend_from_slice(&self.children[n]);
            }
        }
        out
    }

    /// Per-node flags: reachable from the root (the root itself included).
    /// Types outside this set can never occur in a valid instance.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        seen[self.root] = true;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            for &c in &self.children[n] {
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        seen
    }

    /// Per-node flags: the type has at least one finite instance
    /// (non-productive types arise only in inconsistent recursive DTDs,
    /// e.g. `a → (a, b)`).
    pub fn productive(&self, dtd: &Dtd) -> Vec<bool> {
        self.min_heights(dtd).into_iter().map(|h| h != usize::MAX).collect()
    }

    /// Topological order of a DAG DTD (root first). `None` if recursive.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        if self.is_recursive() {
            return None;
        }
        let mut indegree = vec![0usize; self.len()];
        for c in &self.children {
            for &j in c {
                indegree[j] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..self.len()).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            for &j in &self.children[n] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    queue.push(j);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Minimum height of any instance subtree rooted at each type
    /// (leaf/str nodes have height 0; `usize::MAX` marks types with no
    /// finite instance — possible only in inconsistent recursive DTDs).
    pub fn min_heights(&self, dtd: &Dtd) -> Vec<usize> {
        let n = self.len();
        let mut h = vec![usize::MAX; n];
        // Fixpoint: relax until stable. O(n·E) worst case — fine at DTD size.
        let mut changed = true;
        while changed {
            changed = false;
            for (i, name) in self.names.iter().enumerate() {
                let production = dtd.production(name).expect("declared");
                let candidate = match production {
                    NormalContent::Str | NormalContent::Empty => Some(0),
                    NormalContent::Star(_) => Some(0), // zero occurrences
                    NormalContent::Seq(items) => {
                        // All children required: 1 + max over children.
                        items
                            .iter()
                            .map(|c| h[self.index[c]])
                            .try_fold(0usize, |acc, ch| (ch != usize::MAX).then(|| acc.max(ch)))
                            .map(|m| m + 1)
                    }
                    NormalContent::Choice(items) => {
                        // One child required: 1 + min over children.
                        items
                            .iter()
                            .map(|c| h[self.index[c]])
                            .filter(|&ch| ch != usize::MAX)
                            .min()
                            .map(|m| m + 1)
                    }
                };
                if let Some(c) = candidate {
                    if c < h[i] {
                        h[i] = c;
                        changed = true;
                    }
                }
            }
        }
        h
    }

    /// Longest root-to-leaf path length in a DAG DTD graph (edge count).
    /// `None` for recursive DTDs (unbounded).
    pub fn max_depth(&self) -> Option<usize> {
        let order = self.topological_order()?;
        let mut depth = vec![0usize; self.len()];
        for &n in &order {
            for &j in &self.children[n] {
                depth[j] = depth[j].max(depth[n] + 1);
            }
        }
        depth.into_iter().max()
    }
}

/// Mark every node that lies on a directed cycle (Tarjan SCC: size > 1, or
/// a self-loop).
fn find_recursive(children: &[Vec<usize>]) -> Vec<bool> {
    let n = children.len();
    let mut recursive = vec![false; n];
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut counter = 0usize;

    // Iterative Tarjan to avoid recursion-depth limits on deep DTDs.
    enum Frame {
        Enter(usize),
        Continue(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work = vec![Frame::Enter(start)];
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = counter;
                    low[v] = counter;
                    counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Continue(v, 0));
                }
                Frame::Continue(v, mut ci) => {
                    let mut descend = None;
                    while ci < children[v].len() {
                        let w = children[v][ci];
                        ci += 1;
                        if index[w] == usize::MAX {
                            descend = Some(w);
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if let Some(w) = descend {
                        work.push(Frame::Continue(v, ci));
                        work.push(Frame::Enter(w));
                        continue;
                    }
                    if low[v] == index[v] {
                        // Pop the SCC rooted at v.
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        let cyclic = scc.len() > 1 || children[v].contains(&v);
                        if cyclic {
                            for w in scc {
                                recursive[w] = true;
                            }
                        }
                    } else if let Some(Frame::Continue(parent, _)) = work.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }
    recursive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    fn graph(src: &str, root: &str) -> (Dtd, DtdGraph) {
        let d = parse_dtd(src, root).unwrap();
        let g = DtdGraph::new(&d);
        (d, g)
    }

    #[test]
    fn children_and_parents() {
        let (_, g) = graph("<!ELEMENT r (a, b)><!ELEMENT a (b)><!ELEMENT b EMPTY>", "r");
        let r = g.index_of("r").unwrap();
        let a = g.index_of("a").unwrap();
        let b = g.index_of("b").unwrap();
        assert_eq!(g.children(r), &[a, b]);
        assert_eq!(g.children(a), &[b]);
        let mut parents = g.parents(b).to_vec();
        parents.sort();
        assert_eq!(parents, vec![r, a]);
    }

    #[test]
    fn duplicate_child_types_deduped() {
        let (_, g) = graph("<!ELEMENT r (a, a)><!ELEMENT a EMPTY>", "r");
        let r = g.index_of("r").unwrap();
        assert_eq!(g.children(r).len(), 1);
    }

    #[test]
    fn non_recursive_dag() {
        let (_, g) =
            graph("<!ELEMENT r (a, b)><!ELEMENT a (c)><!ELEMENT b (c)><!ELEMENT c EMPTY>", "r");
        assert!(!g.is_recursive());
        let order = g.topological_order().unwrap();
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        for i in 0..g.len() {
            for &j in g.children(i) {
                assert!(pos[&i] < pos[&j], "topological order violated");
            }
        }
        assert_eq!(g.max_depth(), Some(2));
    }

    #[test]
    fn direct_recursion_detected() {
        let (_, g) = graph("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a");
        assert!(g.is_recursive());
        assert!(g.is_recursive_type(g.index_of("a").unwrap()));
        assert!(!g.is_recursive_type(g.index_of("b").unwrap()));
        assert!(g.topological_order().is_none());
        assert!(g.max_depth().is_none());
    }

    #[test]
    fn indirect_recursion_detected() {
        let (_, g) = graph(
            "<!ELEMENT a (b | d)><!ELEMENT b (c)><!ELEMENT c (a | d)><!ELEMENT d EMPTY>",
            "a",
        );
        assert!(g.is_recursive());
        for n in ["a", "b", "c"] {
            assert!(g.is_recursive_type(g.index_of(n).unwrap()), "{n} is on the cycle");
        }
        assert!(!g.is_recursive_type(g.index_of("d").unwrap()));
    }

    #[test]
    fn reachability() {
        let (_, g) =
            graph("<!ELEMENT r (a)><!ELEMENT a (b)><!ELEMENT b EMPTY><!ELEMENT z EMPTY>", "r");
        let r = g.index_of("r").unwrap();
        let reach = g.reachable_from(r);
        assert!(reach.contains(&g.index_of("a").unwrap()));
        assert!(reach.contains(&g.index_of("b").unwrap()));
        assert!(!reach.contains(&g.index_of("z").unwrap()));
        assert!(!reach.contains(&r));
    }

    #[test]
    fn reachability_includes_self_on_cycle() {
        let (_, g) = graph("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a");
        let a = g.index_of("a").unwrap();
        assert!(g.reachable_from(a).contains(&a));
    }

    #[test]
    fn min_heights_consistent_recursive_dtd() {
        // a -> a | b : minimal instance of a is a(b), height 1+0... b is EMPTY so
        // min_height(b)=0, min_height(a)=1.
        let (d, g) = graph("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a");
        let h = g.min_heights(&d);
        assert_eq!(h[g.index_of("b").unwrap()], 0);
        assert_eq!(h[g.index_of("a").unwrap()], 1);
    }

    #[test]
    fn min_heights_star_is_zero() {
        let (d, g) = graph("<!ELEMENT a (a*)>", "a");
        let h = g.min_heights(&d);
        assert_eq!(h[g.index_of("a").unwrap()], 0);
    }

    #[test]
    fn min_heights_inconsistent_type_is_unbounded() {
        // a -> a, b : `a` requires itself, no finite instance.
        let (d, g) = graph("<!ELEMENT a (a, b)><!ELEMENT b EMPTY>", "a");
        let h = g.min_heights(&d);
        assert_eq!(h[g.index_of("a").unwrap()], usize::MAX);
    }

    #[test]
    fn reachable_and_productive_flags() {
        let (d, g) = graph(
            "<!ELEMENT r (a)><!ELEMENT a (b)><!ELEMENT b EMPTY><!ELEMENT z EMPTY>\
             <!ELEMENT w (w, b)>",
            "r",
        );
        let reach = g.reachable();
        assert!(reach[g.index_of("r").unwrap()], "root is reachable from itself");
        assert!(reach[g.index_of("b").unwrap()]);
        assert!(!reach[g.index_of("z").unwrap()]);
        assert!(!reach[g.index_of("w").unwrap()]);
        let prod = g.productive(&d);
        assert!(prod[g.index_of("r").unwrap()]);
        assert!(!prod[g.index_of("w").unwrap()], "w requires itself forever");
    }

    #[test]
    fn hospital_graph_shape() {
        let src = r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#;
        let (_, g) = graph(src, "hospital");
        assert!(!g.is_recursive());
        let dept = g.index_of("dept").unwrap();
        let reach = g.reachable_from(dept);
        assert!(reach.contains(&g.index_of("bill").unwrap()));
        assert!(!reach.contains(&g.index_of("hospital").unwrap()));
    }
}

//! The general DTD model: element declarations with arbitrary regular
//! expression content (as parsed from `<!ELEMENT …>` syntax).

use crate::attributes::AttDef;
use crate::content::Content;
use crate::error::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A DTD with general regular-expression content models.
///
/// This is what [`crate::parse_general_dtd`] produces. The security-view
/// algorithms operate on the paper normal form ([`crate::Dtd`]); convert
/// with [`GeneralDtd::normalize`].
#[derive(Debug, Clone)]
pub struct GeneralDtd {
    root: String,
    declarations: Vec<(String, Content)>,
    index: HashMap<String, usize>,
    /// `<!ATTLIST …>` declarations per element type (ordered, so
    /// `Display` output is deterministic).
    attributes: BTreeMap<String, Vec<AttDef>>,
}

impl GeneralDtd {
    /// Assemble a DTD from declarations and a root type, checking that the
    /// root and every referenced type are declared exactly once.
    pub fn new(root: impl Into<String>, declarations: Vec<(String, Content)>) -> Result<Self> {
        let root = root.into();
        let mut index = HashMap::with_capacity(declarations.len());
        for (i, (name, _)) in declarations.iter().enumerate() {
            if index.insert(name.clone(), i).is_some() {
                return Err(Error::DuplicateDeclaration(name.clone()));
            }
        }
        if !index.contains_key(&root) {
            return Err(Error::MissingRoot(root));
        }
        for (name, content) in &declarations {
            for referenced in content.referenced_names() {
                if !index.contains_key(referenced) {
                    return Err(Error::UndeclaredElement {
                        referenced_by: name.clone(),
                        name: referenced.to_string(),
                    });
                }
            }
        }
        Ok(GeneralDtd { root, declarations, index, attributes: BTreeMap::new() })
    }

    /// Attach attribute declarations (replacing any previous set for the
    /// mentioned element types). Unknown element types are rejected.
    pub fn with_attributes(
        mut self,
        attlists: impl IntoIterator<Item = (String, Vec<AttDef>)>,
    ) -> Result<Self> {
        for (elem, defs) in attlists {
            if !self.index.contains_key(&elem) {
                return Err(Error::UndeclaredElement {
                    referenced_by: "<!ATTLIST>".into(),
                    name: elem,
                });
            }
            self.attributes.entry(elem).or_default().extend(defs);
        }
        Ok(self)
    }

    /// Declared attributes of an element type (empty slice if none).
    pub fn attribute_defs(&self, elem: &str) -> &[AttDef] {
        self.attributes.get(elem).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All element types with attribute declarations.
    pub fn attlisted_types(&self) -> impl Iterator<Item = (&str, &[AttDef])> {
        self.attributes.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// The root element type.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Content model of `name`, if declared.
    pub fn content(&self, name: &str) -> Option<&Content> {
        self.index.get(name).map(|&i| &self.declarations[i].1)
    }

    /// All declarations in declaration order.
    pub fn declarations(&self) -> &[(String, Content)] {
        &self.declarations
    }

    /// Number of declared element types.
    pub fn len(&self) -> usize {
        self.declarations.len()
    }

    /// True iff no element types are declared (never constructible via
    /// [`GeneralDtd::new`], which requires the root).
    pub fn is_empty(&self) -> bool {
        self.declarations.is_empty()
    }
}

impl fmt::Display for GeneralDtd {
    /// Serialize back to `<!ELEMENT …>`/`<!ATTLIST …>` syntax; the output
    /// re-parses to an equivalent DTD.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, content) in &self.declarations {
            match content {
                Content::Empty => writeln!(f, "<!ELEMENT {name} EMPTY>")?,
                Content::PcData => writeln!(f, "<!ELEMENT {name} (#PCDATA)>")?,
                // Non-group content needs wrapping parens in DTD syntax.
                Content::Name(_) | Content::Star(_) | Content::Plus(_) | Content::Opt(_) => {
                    writeln!(f, "<!ELEMENT {name} ({content})>")?
                }
                _ => writeln!(f, "<!ELEMENT {name} {content}>")?,
            }
        }
        for (elem, defs) in &self.attributes {
            for def in defs {
                let ty = if def.allowed.is_empty() {
                    "CDATA".to_string()
                } else {
                    format!("({})", def.allowed.join(" | "))
                };
                let default = if def.required {
                    "#REQUIRED".to_string()
                } else {
                    match &def.default {
                        Some(d) => format!("\"{d}\""),
                        None => "#IMPLIED".to_string(),
                    }
                };
                writeln!(f, "<!ATTLIST {elem} {} {ty} {default}>", def.name)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(n: &str) -> Content {
        Content::Name(n.into())
    }

    #[test]
    fn build_and_lookup() {
        let d = GeneralDtd::new(
            "r",
            vec![
                ("r".into(), Content::Seq(vec![name("a"), name("b")])),
                ("a".into(), Content::PcData),
                ("b".into(), Content::PcData),
            ],
        )
        .unwrap();
        assert_eq!(d.root(), "r");
        assert_eq!(d.content("a"), Some(&Content::PcData));
        assert_eq!(d.content("zzz"), None);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn missing_root_rejected() {
        let e = GeneralDtd::new("r", vec![("a".into(), Content::PcData)]).unwrap_err();
        assert!(matches!(e, Error::MissingRoot(_)));
    }

    #[test]
    fn undeclared_reference_rejected() {
        let e = GeneralDtd::new("r", vec![("r".into(), name("ghost"))]).unwrap_err();
        assert!(matches!(e, Error::UndeclaredElement { .. }));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let src = r#"<!ELEMENT r (a, (b | c)*, d?)>
<!ELEMENT a (#PCDATA)>
<!ELEMENT b EMPTY>
<!ELEMENT c (a+)>
<!ELEMENT d EMPTY>
<!ATTLIST r version CDATA #REQUIRED>
<!ATTLIST a kind (x | y) "x">"#;
        let d = crate::parser::parse_general_dtd(src, "r").unwrap();
        let printed = d.to_string();
        let reparsed = crate::parser::parse_general_dtd(&printed, "r")
            .unwrap_or_else(|e| panic!("printed DTD failed to reparse: {e}\n{printed}"));
        assert_eq!(reparsed.to_string(), printed);
        assert_eq!(reparsed.attribute_defs("r").len(), 1);
        assert_eq!(reparsed.attribute_defs("a")[0].allowed, ["x", "y"]);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        let e =
            GeneralDtd::new("r", vec![("r".into(), Content::Empty), ("r".into(), Content::PcData)])
                .unwrap_err();
        assert!(matches!(e, Error::DuplicateDeclaration(_)));
    }
}

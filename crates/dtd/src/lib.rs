#![warn(missing_docs)]
//! # sxv-dtd — DTD substrate
//!
//! Document Type Definitions as defined in §2 of *Secure XML Querying with
//! Security Views* (SIGMOD 2004):
//!
//! > a DTD is `(Ele, Rg, r)` where `Rg(A)` is a regular expression of the
//! > form `α ::= str | ε | B1,…,Bn | B1+…+Bn | B1*`.
//!
//! This crate provides:
//!
//! * a **general content model** ([`Content`]) matching real
//!   `<!ELEMENT …>` declarations (sequences, choices, `?`/`*`/`+`,
//!   `#PCDATA`, `EMPTY`), with a parser ([`parse_general_dtd`]);
//! * the **paper normal form** ([`NormalContent`], [`Dtd`]) and a
//!   normalizer that rewrites any general DTD into it by introducing fresh
//!   element types (the paper's footnote "all DTDs can be expressed in this
//!   form by introducing new element types");
//! * **validation** of documents against general content models using
//!   Brzozowski derivatives ([`validate()`](validate::validate)), and **determinism**
//!   (1-unambiguity) checking per the XML standard
//!   ([`determinism`], used by Prop. 3.1's well-definedness argument);
//! * the **DTD graph** (§2): children, reachability, recursion detection,
//!   topological order ([`graph::DtdGraph`]);
//! * **bounded unfolding** of recursive DTDs (§4.2) used for query
//!   rewriting over recursive security views ([`unfold`]).

pub mod attributes;
pub mod content;
pub mod determinism;
pub mod error;
pub mod graph;
pub mod model;
pub mod normal;
pub mod parser;
pub mod unfold;
pub mod validate;

pub use attributes::{validate_attributes, AttDef};
pub use content::Content;
pub use error::{Error, Result};
pub use graph::DtdGraph;
pub use model::GeneralDtd;
pub use normal::{Dtd, NormalContent};
pub use parser::{parse_content_model, parse_dtd, parse_general_dtd};
pub use unfold::{UnfoldedContent, UnfoldedDtd, UnfoldedNodeId};
pub use validate::{validate, validate_subtree};

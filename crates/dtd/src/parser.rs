//! Parser for `<!ELEMENT …>` DTD syntax.
//!
//! Supported declarations:
//!
//! ```text
//! <!ELEMENT name EMPTY>
//! <!ELEMENT name (#PCDATA)>
//! <!ELEMENT name (a, b?, (c | d)*, e+)>
//! ```
//!
//! `<!ATTLIST>` declarations parse into [`AttDef`]s attached to element
//! types; `<!ENTITY>`/`<!NOTATION>` declarations and comments are
//! skipped. Mixed content other than pure `(#PCDATA)` and the `ANY`
//! keyword are rejected ([`crate::Error::Unsupported`]) — the paper's
//! model has no mixed content.

use crate::attributes::AttDef;
use crate::content::Content;
use crate::error::{Error, Result};
use crate::model::GeneralDtd;
use crate::normal::Dtd;

/// Parse DTD text into a [`GeneralDtd`] with the given root type.
pub fn parse_general_dtd(input: &str, root: &str) -> Result<GeneralDtd> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    let mut declarations = Vec::new();
    let mut attlists: Vec<(String, Vec<AttDef>)> = Vec::new();
    loop {
        p.skip_trivia()?;
        if p.at_end() {
            break;
        }
        if p.starts_with("<!ELEMENT") {
            p.pos += "<!ELEMENT".len();
            p.skip_ws();
            let name = p.parse_name()?;
            p.skip_ws();
            let content = p.parse_content_spec()?;
            p.skip_ws();
            p.expect(">")?;
            declarations.push((name, content));
        } else if p.starts_with("<!ATTLIST") {
            attlists.push(p.parse_attlist()?);
        } else if p.starts_with("<!ENTITY") || p.starts_with("<!NOTATION") {
            p.skip_declaration()?;
        } else {
            return Err(p.err("expected a DTD declaration"));
        }
    }
    GeneralDtd::new(root, declarations)?.with_attributes(attlists)
}

/// Parse DTD text and normalize straight to the paper normal form.
pub fn parse_dtd(input: &str, root: &str) -> Result<Dtd> {
    parse_general_dtd(input, root)?.normalize()
}

/// Parse a standalone content-model expression, e.g. `(a, (b | c)*)`.
pub fn parse_content_model(input: &str) -> Result<Content> {
    let mut p = Parser { input: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let c = p.parse_content_spec()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after content model"));
    }
    Ok(c)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse { offset: self.pos, message: message.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn expect(&mut self, s: &str) -> Result<()> {
        if self.starts_with(s) {
            self.pos += s.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                loop {
                    if self.pos + 3 > self.input.len() {
                        return Err(self.err("unterminated comment"));
                    }
                    if self.starts_with("-->") {
                        self.pos += 3;
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_declaration(&mut self) -> Result<()> {
        // Skip to the matching '>' (quoted strings may contain '>').
        let mut quote: Option<u8> = None;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated declaration")),
                Some(q @ (b'"' | b'\'')) => {
                    self.pos += 1;
                    match quote {
                        Some(open) if open == q => quote = None,
                        None => quote = Some(q),
                        Some(_) => {}
                    }
                }
                Some(b'>') if quote.is_none() => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos]).unwrap().to_string())
    }

    /// Parse `<!ATTLIST elem (attr type default)*>`.
    fn parse_attlist(&mut self) -> Result<(String, Vec<AttDef>)> {
        self.expect("<!ATTLIST")?;
        self.skip_ws();
        let elem = self.parse_name()?;
        let mut defs = Vec::new();
        loop {
            self.skip_ws();
            if self.eat_char(b'>') {
                return Ok((elem, defs));
            }
            let attr = self.parse_name()?;
            self.skip_ws();
            // Attribute type: an enumerated list or a type keyword
            // (CDATA, ID, IDREF(S), NMTOKEN(S), ENTITY, ENTITIES,
            // NOTATION (…)). Only presence/enumeration is enforced.
            let mut allowed = Vec::new();
            if self.peek() == Some(b'(') {
                allowed = self.parse_enumeration()?;
            } else {
                let ty = self.parse_name()?;
                if ty == "NOTATION" {
                    self.skip_ws();
                    let _ = self.parse_enumeration()?; // notation names, unchecked
                }
            }
            self.skip_ws();
            let (required, default) = if self.starts_with("#REQUIRED") {
                self.pos += "#REQUIRED".len();
                (true, None)
            } else if self.starts_with("#IMPLIED") {
                self.pos += "#IMPLIED".len();
                (false, None)
            } else if self.starts_with("#FIXED") {
                self.pos += "#FIXED".len();
                self.skip_ws();
                (false, Some(self.parse_quoted()?))
            } else {
                (false, Some(self.parse_quoted()?))
            };
            defs.push(AttDef { name: attr, required, default, allowed });
        }
    }

    fn parse_enumeration(&mut self) -> Result<Vec<String>> {
        self.expect("(")?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            out.push(self.parse_name()?);
            self.skip_ws();
            if self.eat_char(b')') {
                return Ok(out);
            }
            self.expect("|")?;
        }
    }

    fn parse_quoted(&mut self) -> Result<String> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted value")),
        };
        self.pos += 1;
        let start = self.pos;
        while self.peek() != Some(quote) {
            if self.peek().is_none() {
                return Err(self.err("unterminated quoted value"));
            }
            self.pos += 1;
        }
        let value = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("value is not valid UTF-8"))?
            .to_string();
        self.pos += 1;
        Ok(value)
    }

    fn eat_char(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_content_spec(&mut self) -> Result<Content> {
        if self.starts_with("EMPTY") {
            self.pos += "EMPTY".len();
            return Ok(Content::Empty);
        }
        if self.starts_with("ANY") {
            return Err(Error::Unsupported("ANY content".into()));
        }
        if self.peek() != Some(b'(') {
            return Err(self.err("expected '(' or EMPTY"));
        }
        self.parse_group()
    }

    /// Parse a parenthesized group with an optional postfix operator.
    fn parse_group(&mut self) -> Result<Content> {
        self.expect("(")?;
        self.skip_ws();
        if self.starts_with("#PCDATA") {
            self.pos += "#PCDATA".len();
            self.skip_ws();
            if self.peek() == Some(b'|') {
                return Err(Error::Unsupported("mixed content (#PCDATA | …)".into()));
            }
            self.expect(")")?;
            // An optional trailing '*' on (#PCDATA) is legal XML; same model.
            if self.peek() == Some(b'*') {
                self.pos += 1;
            }
            return Ok(Content::PcData);
        }
        let first = self.parse_cp()?;
        self.skip_ws();
        let group = match self.peek() {
            Some(b',') => {
                let mut items = vec![first];
                while self.peek() == Some(b',') {
                    self.pos += 1;
                    self.skip_ws();
                    items.push(self.parse_cp()?);
                    self.skip_ws();
                }
                Content::Seq(items)
            }
            Some(b'|') => {
                let mut items = vec![first];
                while self.peek() == Some(b'|') {
                    self.pos += 1;
                    self.skip_ws();
                    items.push(self.parse_cp()?);
                    self.skip_ws();
                }
                Content::Choice(items)
            }
            _ => first,
        };
        self.expect(")")?;
        Ok(self.apply_postfix(group))
    }

    /// Parse a content particle: a name or nested group, with postfix op.
    fn parse_cp(&mut self) -> Result<Content> {
        self.skip_ws();
        if self.peek() == Some(b'(') {
            self.parse_group()
        } else {
            let name = self.parse_name()?;
            Ok(self.apply_postfix(Content::Name(name)))
        }
    }

    fn apply_postfix(&mut self, inner: Content) -> Content {
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                Content::Star(Box::new(inner))
            }
            Some(b'+') => {
                self.pos += 1;
                Content::Plus(Box::new(inner))
            }
            Some(b'?') => {
                self.pos += 1;
                Content::Opt(Box::new(inner))
            }
            _ => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_dtd() {
        let d = parse_general_dtd(
            "<!ELEMENT r (a, b)>\n<!ELEMENT a (#PCDATA)>\n<!ELEMENT b EMPTY>",
            "r",
        )
        .unwrap();
        assert_eq!(d.root(), "r");
        assert_eq!(d.content("a"), Some(&Content::PcData));
        assert_eq!(d.content("b"), Some(&Content::Empty));
        assert_eq!(
            d.content("r"),
            Some(&Content::Seq(vec![Content::Name("a".into()), Content::Name("b".into())]))
        );
    }

    #[test]
    fn postfix_operators() {
        let c = parse_content_model("(a?, b*, c+)").unwrap();
        assert_eq!(
            c,
            Content::Seq(vec![
                Content::Opt(Box::new(Content::Name("a".into()))),
                Content::Star(Box::new(Content::Name("b".into()))),
                Content::Plus(Box::new(Content::Name("c".into()))),
            ])
        );
    }

    #[test]
    fn nested_groups() {
        let c = parse_content_model("(a, (b | c)*, (d, e)?)").unwrap();
        assert!(c.matches(["a"]));
        assert!(c.matches(["a", "b", "c", "d", "e"]));
        assert!(!c.matches(["a", "d"]));
    }

    #[test]
    fn choice_group_with_star_on_group() {
        let c = parse_content_model("((a | b)*)").unwrap();
        assert!(c.matches([]));
        assert!(c.matches(["a", "b", "a"]));
    }

    #[test]
    fn pcdata_star_accepted() {
        let c = parse_content_model("(#PCDATA)*").unwrap();
        assert_eq!(c, Content::PcData);
    }

    #[test]
    fn mixed_content_rejected() {
        let e = parse_general_dtd("<!ELEMENT r (#PCDATA | a)><!ELEMENT a EMPTY>", "r").unwrap_err();
        assert!(matches!(e, Error::Unsupported(_)));
    }

    #[test]
    fn any_rejected() {
        let e = parse_general_dtd("<!ELEMENT r ANY>", "r").unwrap_err();
        assert!(matches!(e, Error::Unsupported(_)));
    }

    #[test]
    fn attlist_parsed_and_entities_skipped() {
        let d = parse_general_dtd(
            r#"<!-- a comment -->
<!ELEMENT r (a)>
<!ATTLIST r id CDATA #IMPLIED>
<!ELEMENT a (#PCDATA)>
<!ENTITY nbsp "&#160;">"#,
            "r",
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.attribute_defs("r").len(), 1);
        assert_eq!(d.attribute_defs("r")[0].name, "id");
        assert!(!d.attribute_defs("r")[0].required);
    }

    #[test]
    fn attlist_multiple_attrs_and_forms() {
        let d = parse_general_dtd(
            r#"<!ELEMENT r EMPTY>
<!ATTLIST r
  version CDATA #REQUIRED
  kind (big | small) "small"
  frozen CDATA #FIXED "yes"
  note NMTOKEN #IMPLIED>"#,
            "r",
        )
        .unwrap();
        let defs = d.attribute_defs("r");
        assert_eq!(defs.len(), 4);
        assert!(defs[0].required);
        assert_eq!(defs[1].allowed, ["big", "small"]);
        assert_eq!(defs[1].default.as_deref(), Some("small"));
        assert_eq!(defs[2].default.as_deref(), Some("yes"));
        assert!(!defs[3].required);
    }

    #[test]
    fn attlist_for_unknown_element_rejected() {
        let e = parse_general_dtd("<!ELEMENT r EMPTY><!ATTLIST ghost id CDATA #IMPLIED>", "r")
            .unwrap_err();
        assert!(matches!(e, Error::UndeclaredElement { .. }));
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_general_dtd("<!ELEMENT r (a)><bogus>", "r").is_err());
        assert!(parse_general_dtd("<!ELEMENT r (a", "r").is_err());
    }

    #[test]
    fn undeclared_child_rejected_at_assembly() {
        let e = parse_general_dtd("<!ELEMENT r (a)>", "r").unwrap_err();
        assert!(matches!(e, Error::UndeclaredElement { .. }));
    }

    #[test]
    fn parse_dtd_normalizes() {
        let d =
            parse_dtd("<!ELEMENT r ((a | b)+)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>", "r").unwrap();
        // (a|b)+ => wrapper W -> a+b ; r -> W, W*
        assert!(d.len() >= 4);
        assert!(d.contains("r"));
    }

    #[test]
    fn hospital_dtd_parses() {
        let src = r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#;
        let d = parse_dtd(src, "hospital").unwrap();
        assert_eq!(d.root(), "hospital");
        assert_eq!(d.production("hospital"), Some(&crate::NormalContent::Star("dept".into())));
        assert_eq!(
            d.production("treatment"),
            Some(&crate::NormalContent::Choice(vec!["trial".into(), "regular".into()]))
        );
    }
}

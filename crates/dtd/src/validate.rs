//! Document validation against a DTD (conformance test of §2).
//!
//! A tree `T` conforms to `D` iff the root is labelled `r`, every element's
//! children-label sequence is in the language of its production, and text
//! nodes appear only where the content model allows PCDATA.

use crate::content::PCDATA_LABEL;
use crate::error::{Error, Result};
use crate::model::GeneralDtd;
use crate::normal::Dtd;
use sxv_xml::{Document, NodeId};

/// Validate a whole document against a general DTD.
pub fn validate(dtd: &GeneralDtd, doc: &Document) -> Result<()> {
    let root = doc.root().map_err(|_| Error::Invalid {
        node: "<document>".into(),
        message: "document is empty".into(),
    })?;
    let label = doc.label(root).map_err(|_| Error::Invalid {
        node: "<root>".into(),
        message: "root is not an element".into(),
    })?;
    if label != dtd.root() {
        return Err(Error::Invalid {
            node: format!("root <{label}>"),
            message: format!("expected root element type {:?}", dtd.root()),
        });
    }
    validate_subtree(dtd, doc, root)
}

/// Validate the subtree rooted at `node` (its label must be declared).
pub fn validate_subtree(dtd: &GeneralDtd, doc: &Document, node: NodeId) -> Result<()> {
    // Iterative: the stack holds element nodes still to check.
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        let label = match doc.label_opt(id) {
            Some(l) => l,
            None => continue, // text nodes are checked via their parent
        };
        let content = dtd.content(label).ok_or_else(|| Error::Invalid {
            node: format!("<{label}>"),
            message: "element type not declared in DTD".into(),
        })?;
        let child_labels: Vec<&str> =
            doc.children(id).iter().map(|&c| doc.label_opt(c).unwrap_or(PCDATA_LABEL)).collect();
        if !content.matches(child_labels.iter().copied()) {
            return Err(Error::Invalid {
                node: format!("<{label}>"),
                message: format!(
                    "children [{}] do not match content model {content}",
                    child_labels.join(", ")
                ),
            });
        }
        if !content.allows_text() {
            if let Some(&t) = doc.children(id).iter().find(|&&c| doc.is_text(c)) {
                return Err(Error::Invalid {
                    node: format!("<{label}>"),
                    message: format!(
                        "text content {:?} not allowed by content model {content}",
                        doc.text_opt(t).unwrap_or_default()
                    ),
                });
            }
        }
        for &c in doc.children(id) {
            if doc.is_element(c) {
                stack.push(c);
            }
        }
    }
    Ok(())
}

impl Dtd {
    /// Validate a document against this normal-form DTD.
    pub fn validate(&self, doc: &Document) -> Result<()> {
        validate(&self.to_general(), doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_general_dtd;
    use sxv_xml::parse;

    fn dtd() -> GeneralDtd {
        parse_general_dtd("<!ELEMENT r (a, b*)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>", "r")
            .unwrap()
    }

    #[test]
    fn conforming_document_passes() {
        let doc = parse("<r><a>hi</a><b/><b/></r>").unwrap();
        validate(&dtd(), &doc).unwrap();
    }

    #[test]
    fn missing_required_child_fails() {
        let doc = parse("<r><b/></r>").unwrap();
        let e = validate(&dtd(), &doc).unwrap_err();
        assert!(e.to_string().contains("<r>"), "{e}");
    }

    #[test]
    fn wrong_order_fails() {
        let doc = parse("<r><b/><a>hi</a></r>").unwrap();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn wrong_root_fails() {
        let doc = parse("<a>hi</a>").unwrap();
        let e = validate(&dtd(), &doc).unwrap_err();
        assert!(e.to_string().contains("expected root"), "{e}");
    }

    #[test]
    fn undeclared_element_fails() {
        let doc = parse("<r><a>hi</a><zzz/></r>").unwrap();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn text_in_element_content_fails() {
        let doc = parse("<r><a>hi</a>stray<b/></r>").unwrap();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn empty_element_with_text_fails() {
        let doc = parse("<r><a>hi</a><b>oops</b></r>").unwrap();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn pcdata_element_with_element_child_fails() {
        let doc = parse("<r><a><b/></a></r>").unwrap();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn empty_document_fails() {
        let doc = Document::new();
        assert!(validate(&dtd(), &doc).is_err());
    }

    #[test]
    fn normal_dtd_validate_wrapper() {
        let d = crate::parser::parse_dtd("<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>", "r").unwrap();
        let doc = parse("<r><a>1</a><a>2</a></r>").unwrap();
        d.validate(&doc).unwrap();
        let bad = parse("<r><r/></r>").unwrap();
        assert!(d.validate(&bad).is_err());
    }

    #[test]
    fn choice_content_validates_either_branch() {
        let g = parse_general_dtd("<!ELEMENT t (x | y)><!ELEMENT x EMPTY><!ELEMENT y EMPTY>", "t")
            .unwrap();
        validate(&g, &parse("<t><x/></t>").unwrap()).unwrap();
        validate(&g, &parse("<t><y/></t>").unwrap()).unwrap();
        assert!(validate(&g, &parse("<t><x/><y/></t>").unwrap()).is_err());
        assert!(validate(&g, &parse("<t/>").unwrap()).is_err());
    }

    #[test]
    fn recursive_dtd_validates() {
        let g = parse_general_dtd("<!ELEMENT a (b, a?)><!ELEMENT b EMPTY>", "a").unwrap();
        validate(&g, &parse("<a><b/><a><b/></a></a>").unwrap()).unwrap();
        assert!(validate(&g, &parse("<a><a><b/></a></a>").unwrap()).is_err());
    }
}

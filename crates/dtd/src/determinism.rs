//! One-unambiguity (determinism) checking for content models.
//!
//! The XML standard requires content models to be *deterministic* (1-
//! unambiguous): while matching children left to right, the next child
//! label must identify a unique position in the expression. The paper
//! leans on this ("DTD D must be unambiguous by the XML standard") for
//! Prop. 3.1 — each element is parsed by a unique production position, so
//! node accessibility is well defined.
//!
//! The classical test (Brüggemann-Klein & Wood): build the Glushkov
//! position automaton and check that no state has two outgoing
//! transitions on the same label. Equivalently, over marked positions:
//!
//! * `first(e)` must not contain two positions with the same label;
//! * for every position `x`, `follow(e, x)` must not contain two
//!   positions with the same label.

use crate::content::Content;
use crate::error::{Error, Result};
use crate::model::GeneralDtd;
use std::collections::{BTreeSet, HashMap};

/// Position-annotated view of a content model: every `Name`/`PcData` leaf
/// gets a unique index.
struct Marked<'a> {
    /// label per position.
    labels: Vec<&'a str>,
}

/// first/last/follow sets over positions.
struct Sets {
    nullable: bool,
    first: BTreeSet<usize>,
    last: BTreeSet<usize>,
}

impl Content {
    /// Check 1-unambiguity. Returns the offending label on failure.
    pub fn check_deterministic(&self) -> std::result::Result<(), String> {
        let mut marked = Marked { labels: Vec::new() };
        let mut follow: Vec<BTreeSet<usize>> = Vec::new();
        let sets = build(self, &mut marked, &mut follow);
        // Competing labels in first(e)?
        if let Some(label) = competing(&sets.first, &marked) {
            return Err(format!(
                "content model {self} is ambiguous: two ways to start with <{label}>"
            ));
        }
        for (x, f) in follow.iter().enumerate() {
            if let Some(label) = competing(f, &marked) {
                return Err(format!(
                    "content model {self} is ambiguous: after <{}>, two ways to continue with <{label}>",
                    marked.labels[x]
                ));
            }
        }
        Ok(())
    }
}

fn competing(set: &BTreeSet<usize>, marked: &Marked) -> Option<String> {
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for &p in set {
        if let Some(&other) = seen.get(marked.labels[p]) {
            if other != p {
                return Some(marked.labels[p].to_string());
            }
        }
        seen.insert(marked.labels[p], p);
    }
    None
}

fn build<'a>(c: &'a Content, marked: &mut Marked<'a>, follow: &mut Vec<BTreeSet<usize>>) -> Sets {
    match c {
        Content::Empty => Sets { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() },
        Content::PcData => {
            // (#PCDATA) is a starred text position.
            let p = marked.labels.len();
            marked.labels.push("#PCDATA");
            follow.push(BTreeSet::from([p]));
            Sets { nullable: true, first: BTreeSet::from([p]), last: BTreeSet::from([p]) }
        }
        Content::Name(n) => {
            let p = marked.labels.len();
            marked.labels.push(n);
            follow.push(BTreeSet::new());
            Sets { nullable: false, first: BTreeSet::from([p]), last: BTreeSet::from([p]) }
        }
        Content::Seq(items) => {
            let mut acc = Sets { nullable: true, first: BTreeSet::new(), last: BTreeSet::new() };
            for item in items {
                let s = build(item, marked, follow);
                // follow(last(acc)) ∪= first(s)
                for &x in &acc.last {
                    follow[x].extend(s.first.iter().copied());
                }
                if acc.nullable {
                    acc.first.extend(s.first.iter().copied());
                }
                if s.nullable {
                    acc.last.extend(s.last.iter().copied());
                } else {
                    acc.last = s.last;
                }
                acc.nullable &= s.nullable;
            }
            acc
        }
        Content::Choice(items) => {
            let mut acc = Sets { nullable: false, first: BTreeSet::new(), last: BTreeSet::new() };
            if items.is_empty() {
                return acc;
            }
            for item in items {
                let s = build(item, marked, follow);
                acc.nullable |= s.nullable;
                acc.first.extend(s.first);
                acc.last.extend(s.last);
            }
            acc
        }
        Content::Star(inner) | Content::Plus(inner) => {
            let s = build(inner, marked, follow);
            // follow(last) ∪= first (the loop-back edge).
            for &x in s.last.iter() {
                let firsts: Vec<usize> = s.first.iter().copied().collect();
                follow[x].extend(firsts);
            }
            Sets {
                nullable: s.nullable || matches!(c, Content::Star(_)),
                first: s.first,
                last: s.last,
            }
        }
        Content::Opt(inner) => {
            let s = build(inner, marked, follow);
            Sets { nullable: true, first: s.first, last: s.last }
        }
    }
}

impl GeneralDtd {
    /// Check that every declared content model is deterministic
    /// (1-unambiguous), as the XML standard requires.
    pub fn check_deterministic(&self) -> Result<()> {
        for (name, content) in self.declarations() {
            content.check_deterministic().map_err(|message| Error::Invalid {
                node: format!("<!ELEMENT {name} …>"),
                message,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_content_model, parse_general_dtd};

    fn det(s: &str) -> std::result::Result<(), String> {
        parse_content_model(s).unwrap().check_deterministic()
    }

    #[test]
    fn deterministic_models_pass() {
        for m in [
            "(a, b, c)",
            "(a | b | c)",
            "(a*)",
            "(a, b?, c*)",
            "((a | b)*, c)",
            "(#PCDATA)",
            "EMPTY",
            "(a, (b | c), d+)",
        ] {
            det(m).unwrap_or_else(|e| panic!("{m} should be deterministic: {e}"));
        }
    }

    #[test]
    fn classic_ambiguous_models_fail() {
        // (a, a?) — after the first a, the next a could be either position?
        // No: (a, a?) IS deterministic (position 2 is the only continuation).
        det("(a, a?)").unwrap();
        // (a?, a) — an initial a is ambiguous between the two positions.
        assert!(det("(a?, a)").is_err());
        // ((a, b) | (a, c)) — the first a is ambiguous.
        assert!(det("((a, b) | (a, c))").is_err());
        // (a | b)* followed by a — after an a, the next a is ambiguous.
        assert!(det("((a | b)*, a)").is_err());
        // (a*, a) — ambiguous.
        assert!(det("(a*, a)").is_err());
    }

    #[test]
    fn star_loop_follow_checked() {
        // ((a, b?)*) — after b, a continues the loop: fine.
        det("((a, b?)*)").unwrap();
        // ((a?, b)*) — after b, an a or... still unique positions: fine.
        det("((a?, b)*)").unwrap();
        // ((a, b?) | (b))* — after a: b-in-group vs loop to b-alone: two
        // b positions reachable after a? follow(a) = {b@1, a@1, b@2}: two
        // b positions → ambiguous.
        assert!(det("(((a, b?) | b)*)").is_err());
    }

    #[test]
    fn dtd_level_check() {
        let good =
            parse_general_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>", "r")
                .unwrap();
        good.check_deterministic().unwrap();
        let bad = parse_general_dtd("<!ELEMENT r (a?, a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
        let e = bad.check_deterministic().unwrap_err();
        assert!(e.to_string().contains("ambiguous"), "{e}");
    }

    #[test]
    fn normal_form_productions_always_deterministic() {
        // Paper-normal-form productions are trivially deterministic —
        // names in a concatenation may repeat (positions are consecutive),
        // but a disjunction with a repeated name is ambiguous.
        det("(a, a, b)").unwrap();
        assert!(det("(a | a)").is_err());
    }
}

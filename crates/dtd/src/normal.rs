//! The paper's DTD normal form (§2):
//!
//! ```text
//! α ::= str | ε | B1,…,Bn | B1+…+Bn | B1*
//! ```
//!
//! Every production is either text, empty, a concatenation of element-type
//! names, a disjunction of names, or a starred name. The security-view
//! algorithms (`derive`, `rewrite`, `optimize`) all operate on this form.
//!
//! [`GeneralDtd::normalize`] rewrites any general DTD into normal form by
//! introducing fresh element types, as the paper's footnote prescribes.
//! Instances of the normalized DTD carry the fresh types as real wrapper
//! elements — the normal form is a *different schema* that encodes the same
//! nesting structure, which is exactly what "introducing new element types
//! (entities)" means.

use crate::attributes::AttDef;
use crate::content::Content;
use crate::error::{Error, Result};
use crate::model::GeneralDtd;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A production right-hand side in paper normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormalContent {
    /// `str` — one PCDATA text child.
    Str,
    /// `ε` — no children.
    Empty,
    /// `B1, …, Bn` — concatenation of names (n ≥ 1).
    Seq(Vec<String>),
    /// `B1 + … + Bn` — disjunction of names (n ≥ 2).
    Choice(Vec<String>),
    /// `B*` — zero or more.
    Star(String),
}

impl NormalContent {
    /// The subelement types appearing in this production, in order,
    /// without deduplication.
    pub fn child_types(&self) -> Vec<&str> {
        match self {
            NormalContent::Str | NormalContent::Empty => Vec::new(),
            NormalContent::Seq(names) | NormalContent::Choice(names) => {
                names.iter().map(String::as_str).collect()
            }
            NormalContent::Star(name) => vec![name.as_str()],
        }
    }

    /// Equivalent general content model (used for validation/generation).
    pub fn to_content(&self) -> Content {
        match self {
            NormalContent::Str => Content::PcData,
            NormalContent::Empty => Content::Empty,
            NormalContent::Seq(names) => {
                Content::seq(names.iter().map(|n| Content::Name(n.clone())).collect())
            }
            NormalContent::Choice(names) => {
                Content::choice(names.iter().map(|n| Content::Name(n.clone())).collect())
            }
            NormalContent::Star(name) => Content::Star(Box::new(Content::Name(name.clone()))),
        }
    }
}

impl fmt::Display for NormalContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalContent::Str => write!(f, "str"),
            NormalContent::Empty => write!(f, "ε"),
            NormalContent::Star(name) => write!(f, "{name}*"),
            _ => write!(f, "{}", self.to_content()),
        }
    }
}

/// A DTD in paper normal form: `(Ele, Rg, r)`.
#[derive(Debug, Clone)]
pub struct Dtd {
    root: String,
    productions: Vec<(String, NormalContent)>,
    index: HashMap<String, usize>,
    /// Attribute declarations per element type (carried over from the
    /// general DTD; fresh normalization wrappers have none).
    attributes: BTreeMap<String, Vec<AttDef>>,
}

impl Dtd {
    /// Assemble from productions and a root, checking declaration
    /// consistency (root declared, references declared, no duplicates).
    pub fn new(root: impl Into<String>, productions: Vec<(String, NormalContent)>) -> Result<Self> {
        let root = root.into();
        let mut index = HashMap::with_capacity(productions.len());
        for (i, (name, _)) in productions.iter().enumerate() {
            if index.insert(name.clone(), i).is_some() {
                return Err(Error::DuplicateDeclaration(name.clone()));
            }
        }
        if !index.contains_key(&root) {
            return Err(Error::MissingRoot(root));
        }
        for (name, content) in &productions {
            for child in content.child_types() {
                if !index.contains_key(child) {
                    return Err(Error::UndeclaredElement {
                        referenced_by: name.clone(),
                        name: child.to_string(),
                    });
                }
            }
        }
        Ok(Dtd { root, productions, index, attributes: BTreeMap::new() })
    }

    /// Attach attribute declarations (used by normalization; unknown
    /// element types are rejected).
    pub fn with_attributes(
        mut self,
        attlists: impl IntoIterator<Item = (String, Vec<AttDef>)>,
    ) -> Result<Self> {
        for (elem, defs) in attlists {
            if !self.index.contains_key(&elem) {
                return Err(Error::UndeclaredElement {
                    referenced_by: "<!ATTLIST>".into(),
                    name: elem,
                });
            }
            self.attributes.entry(elem).or_default().extend(defs);
        }
        Ok(self)
    }

    /// Declared attributes of an element type (empty slice if none).
    pub fn attribute_defs(&self, elem: &str) -> &[AttDef] {
        self.attributes.get(elem).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The root element type `r`.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The production `Rg(name)`, if declared.
    pub fn production(&self, name: &str) -> Option<&NormalContent> {
        self.index.get(name).map(|&i| &self.productions[i].1)
    }

    /// All productions in declaration order.
    pub fn productions(&self) -> &[(String, NormalContent)] {
        &self.productions
    }

    /// True iff `name` is a declared element type.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Number of element types `|Ele|`.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// Always false for a constructed DTD (the root must be declared).
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// Size `|D|` as used in the paper's complexity bounds: the total
    /// number of symbols across all productions.
    pub fn size(&self) -> usize {
        self.productions.iter().map(|(_, c)| 1 + c.child_types().len()).sum()
    }

    /// True iff `child` appears in the production of `parent`.
    pub fn is_child_type(&self, parent: &str, child: &str) -> bool {
        self.production(parent).map(|c| c.child_types().contains(&child)).unwrap_or(false)
    }

    /// View this DTD as a general DTD (for validation and generation).
    pub fn to_general(&self) -> GeneralDtd {
        let decls = self.productions.iter().map(|(n, c)| (n.clone(), c.to_content())).collect();
        GeneralDtd::new(self.root.clone(), decls)
            .expect("normal-form DTD is consistent by construction")
            .with_attributes(self.attributes.iter().map(|(k, v)| (k.clone(), v.clone())))
            .expect("attribute element types exist by construction")
    }
}

impl fmt::Display for Dtd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "/* root: {} */", self.root)?;
        for (name, content) in &self.productions {
            writeln!(f, "{name} -> {content}")?;
        }
        Ok(())
    }
}

impl GeneralDtd {
    /// Rewrite into paper normal form, introducing fresh element types
    /// (`_gN`) for nested subexpressions.
    ///
    /// * `x+` becomes `x, _g*` (exact);
    /// * `x?` becomes `x + _gε` where `_gε → ε` is a fresh empty marker
    ///   element (exact w.r.t. the new schema: the marker element appears
    ///   in instances where the optional part is absent);
    /// * nested sequences/choices/stars get fresh wrapper types.
    pub fn normalize(&self) -> Result<Dtd> {
        let mut out: Vec<(String, NormalContent)> = Vec::new();
        let mut counter = 0usize;
        let mut fresh = |counter: &mut usize| {
            *counter += 1;
            format!("_g{counter}")
        };

        // Queue of (name, general content) to convert; extended as fresh
        // types are minted.
        let mut queue: Vec<(String, Content)> =
            self.declarations().iter().map(|(n, c)| (n.clone(), c.clone())).collect();

        let mut i = 0;
        while i < queue.len() {
            let (name, content) = queue[i].clone();
            i += 1;
            let normal = convert_top(&content, &mut queue, &mut counter, &mut fresh)?;
            out.push((name, normal));
        }
        Dtd::new(self.root().to_string(), out)?
            .with_attributes(self.attlisted_types().map(|(n, d)| (n.to_string(), d.to_vec())))
    }
}

/// Convert a content model to a normal production, pushing fresh
/// declarations onto `queue` as needed.
fn convert_top(
    content: &Content,
    queue: &mut Vec<(String, Content)>,
    counter: &mut usize,
    fresh: &mut impl FnMut(&mut usize) -> String,
) -> Result<NormalContent> {
    Ok(match content {
        Content::Empty => NormalContent::Empty,
        Content::PcData => NormalContent::Str,
        Content::Name(n) => NormalContent::Seq(vec![n.clone()]),
        Content::Seq(items) => NormalContent::Seq(
            items.iter().map(|it| atomize(it, queue, counter, fresh)).collect::<Result<_>>()?,
        ),
        Content::Choice(items) if items.is_empty() => {
            return Err(Error::Unsupported("empty choice (no content can match)".into()))
        }
        Content::Choice(items) if items.len() == 1 => {
            NormalContent::Seq(vec![atomize(&items[0], queue, counter, fresh)?])
        }
        Content::Choice(items) => NormalContent::Choice(
            items.iter().map(|it| atomize(it, queue, counter, fresh)).collect::<Result<_>>()?,
        ),
        Content::Star(inner) => NormalContent::Star(atomize(inner, queue, counter, fresh)?),
        Content::Plus(inner) => {
            // x+  =  x, x*
            let atom = atomize(inner, queue, counter, fresh)?;
            let star = fresh(counter);
            queue.push((star.clone(), Content::Star(Box::new(Content::Name(atom.clone())))));
            NormalContent::Seq(vec![atom, star])
        }
        Content::Opt(inner) => {
            // x?  =  x + _gε   with a fresh empty-marker element.
            let atom = atomize(inner, queue, counter, fresh)?;
            let eps = fresh(counter);
            queue.push((eps.clone(), Content::Empty));
            NormalContent::Choice(vec![atom, eps])
        }
    })
}

/// Reduce a content subexpression to a single element-type name,
/// minting a fresh wrapper type when it is not already a name.
fn atomize(
    content: &Content,
    queue: &mut Vec<(String, Content)>,
    counter: &mut usize,
    fresh: &mut impl FnMut(&mut usize) -> String,
) -> Result<String> {
    match content {
        Content::Name(n) => Ok(n.clone()),
        other => {
            let name = fresh(counter);
            queue.push((name.clone(), other.clone()));
            Ok(name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_general_dtd;

    fn nc_seq(names: &[&str]) -> NormalContent {
        NormalContent::Seq(names.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn build_and_lookup() {
        let d = Dtd::new(
            "r",
            vec![
                ("r".into(), nc_seq(&["a", "b"])),
                ("a".into(), NormalContent::Str),
                ("b".into(), NormalContent::Empty),
            ],
        )
        .unwrap();
        assert_eq!(d.root(), "r");
        assert!(d.contains("a"));
        assert!(!d.contains("z"));
        assert!(d.is_child_type("r", "a"));
        assert!(!d.is_child_type("a", "r"));
        assert_eq!(d.size(), 3 + 1 + 1);
    }

    #[test]
    fn consistency_checks() {
        assert!(matches!(
            Dtd::new("r", vec![("a".into(), NormalContent::Empty)]),
            Err(Error::MissingRoot(_))
        ));
        assert!(matches!(
            Dtd::new("r", vec![("r".into(), nc_seq(&["ghost"]))]),
            Err(Error::UndeclaredElement { .. })
        ));
    }

    #[test]
    fn already_normal_dtd_unchanged_in_shape() {
        let g =
            parse_general_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b EMPTY>", "r")
                .unwrap();
        let d = g.normalize().unwrap();
        assert_eq!(d.production("r"), Some(&nc_seq(&["a", "b"])));
        assert_eq!(d.production("a"), Some(&NormalContent::Str));
        assert_eq!(d.production("b"), Some(&NormalContent::Empty));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn star_of_choice_gets_wrapper() {
        let g =
            parse_general_dtd("<!ELEMENT r ((a | b)*)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>", "r")
                .unwrap();
        let d = g.normalize().unwrap();
        match d.production("r").unwrap() {
            NormalContent::Star(w) => {
                assert!(w.starts_with("_g"), "wrapper expected, got {w}");
                assert_eq!(
                    d.production(w),
                    Some(&NormalContent::Choice(vec!["a".into(), "b".into()]))
                );
            }
            other => panic!("expected star, got {other:?}"),
        }
    }

    #[test]
    fn plus_expands_to_seq_with_star() {
        let g = parse_general_dtd("<!ELEMENT r (a+)><!ELEMENT a EMPTY>", "r").unwrap();
        let d = g.normalize().unwrap();
        match d.production("r").unwrap() {
            NormalContent::Seq(items) => {
                assert_eq!(items[0], "a");
                assert_eq!(d.production(&items[1]), Some(&NormalContent::Star("a".into())));
            }
            other => panic!("expected seq, got {other:?}"),
        }
    }

    #[test]
    fn opt_expands_to_choice_with_empty_marker() {
        let g = parse_general_dtd("<!ELEMENT r (a?)><!ELEMENT a EMPTY>", "r").unwrap();
        let d = g.normalize().unwrap();
        match d.production("r").unwrap() {
            NormalContent::Choice(items) => {
                assert_eq!(items[0], "a");
                assert_eq!(d.production(&items[1]), Some(&NormalContent::Empty));
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn to_general_roundtrip_validates() {
        let d = Dtd::new(
            "r",
            vec![("r".into(), NormalContent::Star("a".into())), ("a".into(), NormalContent::Str)],
        )
        .unwrap();
        let g = d.to_general();
        assert_eq!(g.root(), "r");
        assert!(g.content("r").unwrap().matches(["a", "a"]));
    }

    #[test]
    fn display_shows_productions() {
        let d = Dtd::new(
            "r",
            vec![("r".into(), NormalContent::Star("a".into())), ("a".into(), NormalContent::Str)],
        )
        .unwrap();
        let s = d.to_string();
        assert!(s.contains("r -> a*"));
        assert!(s.contains("a -> str"));
    }
}

//! Bounded unfolding of (possibly recursive) DTDs — §4.2 of the paper.
//!
//! Query rewriting over a *recursive* view DTD cannot directly translate
//! `//` (infinitely many paths). The paper's solution: since the height of
//! the concrete document `T` is known, unfold recursive nodes level by
//! level into a DAG that `T` is guaranteed to conform to, then run the
//! non-recursive rewriting algorithm over the DAG.
//!
//! [`UnfoldedDtd::new`] performs that unfolding: nodes are
//! `(element type, depth)` pairs with depth `≤ height`; at the cutoff the
//! *non-recursive rules* apply — choice alternatives that cannot complete
//! within the remaining height are dropped and stars fall back to zero
//! occurrences — guided by the [`crate::DtdGraph::min_heights`] analysis.

use crate::graph::DtdGraph;
use crate::normal::{Dtd, NormalContent};
use std::collections::HashMap;

/// Index of a node in an [`UnfoldedDtd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnfoldedNodeId(pub usize);

/// The production of an unfolded node, mirroring [`NormalContent`] but with
/// children resolved to unfolded nodes at the next depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnfoldedContent {
    /// `str`.
    Str,
    /// `ε`.
    Empty,
    /// Concatenation; all listed children exist within the height bound.
    Seq(Vec<UnfoldedNodeId>),
    /// Disjunction over the alternatives that fit within the height bound.
    Choice(Vec<UnfoldedNodeId>),
    /// `B*`; `None` when no occurrence fits (the star collapses to zero
    /// occurrences at the cutoff depth).
    Star(Option<UnfoldedNodeId>),
}

/// A DAG unfolding of a DTD to a fixed instance height.
#[derive(Debug, Clone)]
pub struct UnfoldedDtd {
    /// `(type index in the graph, depth)` per node.
    nodes: Vec<(usize, usize)>,
    labels: Vec<String>,
    content: Vec<UnfoldedContent>,
    root: UnfoldedNodeId,
    height: usize,
}

impl UnfoldedDtd {
    /// Unfold `dtd` so that any instance of height ≤ `height` (counting
    /// edges from the root, text leaves excluded) embeds into the result.
    ///
    /// Returns `None` if even the root cannot produce an instance within
    /// `height` levels (e.g. height 0 for a DTD whose root requires
    /// children).
    pub fn new(dtd: &Dtd, height: usize) -> Option<Self> {
        let graph = DtdGraph::new(dtd);
        let min_heights = graph.min_heights(dtd);
        let root_type = graph.root();
        let fits = |ty: usize, depth: usize| {
            min_heights[ty] != usize::MAX && depth + min_heights[ty] <= height
        };
        if !fits(root_type, 0) {
            return None;
        }

        let mut nodes: Vec<(usize, usize)> = Vec::new();
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let get = |nodes: &mut Vec<(usize, usize)>,
                   index: &mut HashMap<(usize, usize), usize>,
                   key: (usize, usize)| {
            *index.entry(key).or_insert_with(|| {
                nodes.push(key);
                nodes.len() - 1
            })
        };

        let root = get(&mut nodes, &mut index, (root_type, 0));
        let mut content: Vec<Option<UnfoldedContent>> = vec![None];
        let mut work = vec![root];
        while let Some(n) = work.pop() {
            if content[n].is_some() {
                continue;
            }
            let (ty, depth) = nodes[n];
            let name = graph.name_of(ty);
            let production = dtd.production(name).expect("declared");
            let resolve = |nodes: &mut Vec<(usize, usize)>,
                           index: &mut HashMap<(usize, usize), usize>,
                           content: &mut Vec<Option<UnfoldedContent>>,
                           work: &mut Vec<usize>,
                           child: &str|
             -> UnfoldedNodeId {
                let cty = graph.index_of(child).expect("declared");
                let id = get(nodes, index, (cty, depth + 1));
                if id == content.len() {
                    content.push(None);
                }
                work.push(id);
                UnfoldedNodeId(id)
            };
            let c = match production {
                NormalContent::Str => UnfoldedContent::Str,
                NormalContent::Empty => UnfoldedContent::Empty,
                NormalContent::Seq(items) => UnfoldedContent::Seq(
                    items
                        .iter()
                        .map(|b| resolve(&mut nodes, &mut index, &mut content, &mut work, b))
                        .collect(),
                ),
                NormalContent::Choice(items) => {
                    let kept: Vec<UnfoldedNodeId> = items
                        .iter()
                        .filter(|b| fits(graph.index_of(b).expect("declared"), depth + 1))
                        .map(|b| resolve(&mut nodes, &mut index, &mut content, &mut work, b))
                        .collect();
                    debug_assert!(
                        !kept.is_empty(),
                        "node creation guarantees at least one alternative fits"
                    );
                    UnfoldedContent::Choice(kept)
                }
                NormalContent::Star(b) => {
                    if fits(graph.index_of(b).expect("declared"), depth + 1) {
                        UnfoldedContent::Star(Some(resolve(
                            &mut nodes,
                            &mut index,
                            &mut content,
                            &mut work,
                            b,
                        )))
                    } else {
                        UnfoldedContent::Star(None)
                    }
                }
            };
            content[n] = Some(c);
        }

        let labels = nodes.iter().map(|&(ty, _)| graph.name_of(ty).to_string()).collect();
        Some(UnfoldedDtd {
            nodes,
            labels,
            content: content.into_iter().map(|c| c.expect("all reachable nodes filled")).collect(),
            root: UnfoldedNodeId(root),
            height,
        })
    }

    /// Root node (the DTD root at depth 0).
    pub fn root(&self) -> UnfoldedNodeId {
        self.root
    }

    /// Number of unfolded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no nodes exist (never: construction requires a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Original element-type label of an unfolded node.
    pub fn label(&self, id: UnfoldedNodeId) -> &str {
        &self.labels[id.0]
    }

    /// Depth of an unfolded node.
    pub fn depth(&self, id: UnfoldedNodeId) -> usize {
        self.nodes[id.0].1
    }

    /// Production of an unfolded node.
    pub fn content(&self, id: UnfoldedNodeId) -> &UnfoldedContent {
        &self.content[id.0]
    }

    /// Unique child node ids, in production order.
    pub fn children(&self, id: UnfoldedNodeId) -> Vec<UnfoldedNodeId> {
        let mut out = Vec::new();
        let push = |c: UnfoldedNodeId, out: &mut Vec<UnfoldedNodeId>| {
            if !out.contains(&c) {
                out.push(c);
            }
        };
        match &self.content[id.0] {
            UnfoldedContent::Str | UnfoldedContent::Empty | UnfoldedContent::Star(None) => {}
            UnfoldedContent::Seq(items) | UnfoldedContent::Choice(items) => {
                for &c in items {
                    push(c, &mut out);
                }
            }
            UnfoldedContent::Star(Some(c)) => push(*c, &mut out),
        }
        out
    }

    /// The height bound this DTD was unfolded to.
    pub fn height(&self) -> usize {
        self.height
    }

    /// All node ids.
    pub fn ids(&self) -> impl Iterator<Item = UnfoldedNodeId> {
        (0..self.nodes.len()).map(UnfoldedNodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_dtd;

    #[test]
    fn non_recursive_unfold_mirrors_dag() {
        let d = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a EMPTY><!ELEMENT b (a)>", "r").unwrap();
        let u = UnfoldedDtd::new(&d, 5).unwrap();
        assert_eq!(u.label(u.root()), "r");
        // r@0, a@1, b@1, a@2
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn recursive_unfold_bounded() {
        // a -> a | b (the paper's Fig. 7(b) pattern, simplified).
        let d = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        let u = UnfoldedDtd::new(&d, 3).unwrap();
        // a@0,a@1,a@2, b@1,b@2,b@3, and a@3? min_height(a)=1 so a@3 cannot
        // complete within height 3 => dropped from the choice at a@2.
        let deepest_a = u.ids().filter(|&i| u.label(i) == "a").map(|i| u.depth(i)).max().unwrap();
        assert_eq!(deepest_a, 2);
        let a2 = u.ids().find(|&i| u.label(i) == "a" && u.depth(i) == 2).unwrap();
        match u.content(a2) {
            UnfoldedContent::Choice(alts) => {
                assert_eq!(alts.len(), 1, "recursive alternative dropped at cutoff");
                assert_eq!(u.label(alts[0]), "b");
            }
            other => panic!("expected choice, got {other:?}"),
        }
    }

    #[test]
    fn star_collapses_at_cutoff() {
        let d = parse_dtd("<!ELEMENT a (b*)><!ELEMENT b (a)>", "a").unwrap();
        let u = UnfoldedDtd::new(&d, 2).unwrap();
        // a@0 -> b@1 -> a@2 -> (b* with no room) Star(None)
        let a2 = u.ids().find(|&i| u.label(i) == "a" && u.depth(i) == 2).unwrap();
        assert_eq!(u.content(a2), &UnfoldedContent::Star(None));
        assert!(u.children(a2).is_empty());
    }

    #[test]
    fn impossible_height_returns_none() {
        // root requires a child chain of length 2.
        let d = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (b)><!ELEMENT b EMPTY>", "r").unwrap();
        assert!(UnfoldedDtd::new(&d, 1).is_none());
        assert!(UnfoldedDtd::new(&d, 2).is_some());
    }

    #[test]
    fn inconsistent_dtd_returns_none() {
        let d = parse_dtd("<!ELEMENT a (a, b)><!ELEMENT b EMPTY>", "a").unwrap();
        assert!(UnfoldedDtd::new(&d, 100).is_none());
    }

    #[test]
    fn depths_strictly_increase_along_edges() {
        let d = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        let u = UnfoldedDtd::new(&d, 4).unwrap();
        for id in u.ids() {
            for c in u.children(id) {
                assert_eq!(u.depth(c), u.depth(id) + 1);
            }
        }
    }

    #[test]
    fn unfolded_node_count_bounded_by_types_times_height() {
        let d = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        for h in [1usize, 4, 16, 64] {
            let u = UnfoldedDtd::new(&d, h).unwrap();
            assert!(u.len() <= 2 * (h + 1), "h={h}: {} nodes", u.len());
            assert_eq!(u.height(), h);
        }
    }

    #[test]
    fn seq_duplicate_children_share_node() {
        let d = parse_dtd("<!ELEMENT r (a, a)><!ELEMENT a EMPTY>", "r").unwrap();
        let u = UnfoldedDtd::new(&d, 3).unwrap();
        match u.content(u.root()) {
            UnfoldedContent::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[0], items[1], "same (type, depth) shares a node");
            }
            other => panic!("expected seq, got {other:?}"),
        }
        assert_eq!(u.children(u.root()).len(), 1);
    }
}

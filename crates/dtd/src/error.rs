//! Error type for DTD parsing, normalization and validation.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// DTD text could not be parsed.
    Parse {
        /// Byte offset into the input where parsing failed.
        offset: usize,
        /// Human-readable description of what was expected.
        message: String,
    },
    /// The DTD references an element type that is never declared.
    UndeclaredElement {
        /// The declaration containing the dangling reference.
        referenced_by: String,
        /// The undeclared element-type name.
        name: String,
    },
    /// An element type is declared more than once.
    DuplicateDeclaration(String),
    /// The designated root type has no declaration.
    MissingRoot(String),
    /// A document failed validation against the DTD.
    Invalid {
        /// Rendering of the offending node.
        node: String,
        /// What failed to conform.
        message: String,
    },
    /// Content model uses a feature outside the supported subset
    /// (mixed content, `ANY`).
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "DTD parse error at byte {offset}: {message}")
            }
            Error::UndeclaredElement { referenced_by, name } => {
                write!(f, "element type {name:?} referenced by {referenced_by:?} is not declared")
            }
            Error::DuplicateDeclaration(name) => {
                write!(f, "element type {name:?} declared more than once")
            }
            Error::MissingRoot(name) => write!(f, "root element type {name:?} is not declared"),
            Error::Invalid { node, message } => {
                write!(f, "document does not conform to DTD at {node}: {message}")
            }
            Error::Unsupported(what) => write!(f, "unsupported DTD feature: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::Parse { offset: 1, message: "x".into() }.to_string().contains("byte 1"));
        assert!(Error::MissingRoot("r".into()).to_string().contains("\"r\""));
        assert!(Error::DuplicateDeclaration("a".into()).to_string().contains("more than once"));
        assert!(Error::Unsupported("ANY".into()).to_string().contains("ANY"));
    }
}

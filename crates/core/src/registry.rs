//! Multi-policy management — the full framework of Fig. 3.
//!
//! The paper's motivating setting is *multiple* user groups querying the
//! same document under different access policies, each with its own
//! automatically derived security view. [`PolicyRegistry`] packages that:
//! register one [`AccessSpec`] per user group, and the registry derives
//! and caches the view, exposes the per-group view DTD, and answers
//! queries — all against a single shared document, with no view ever
//! materialized.

use crate::analysis::audit_view;
use crate::error::{Error, Result};
use crate::optimize::optimize;
use crate::rewrite::rewrite;
use crate::spec::AccessSpec;
use crate::view::def::SecurityView;
use crate::view::derive::derive_view;
use std::collections::BTreeMap;
use sxv_xml::{Document, NodeId};
use sxv_xpath::{eval_at_root, Path};

/// One registered user-group policy.
struct Policy {
    spec: AccessSpec,
    view: SecurityView,
}

/// A set of named access policies over one document DTD.
pub struct PolicyRegistry {
    policies: BTreeMap<String, Policy>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PolicyRegistry { policies: BTreeMap::new() }
    }

    /// Register a user group's policy; the security view is derived
    /// immediately (Fig. 5), re-checked by the static audit
    /// ([`audit_view`] — defense in depth; `derive` output always
    /// passes), and cached.
    pub fn register(&mut self, group: impl Into<String>, spec: AccessSpec) -> Result<()> {
        let view = derive_view(&spec)?;
        self.register_view(group, spec, view)
    }

    /// Register a policy with an explicitly supplied (e.g. hand-authored)
    /// view definition. The static audit gates registration: views with
    /// soundness or completeness violations are rejected, so a bad view
    /// fails at load time rather than at query time.
    pub fn register_view(
        &mut self,
        group: impl Into<String>,
        spec: AccessSpec,
        view: SecurityView,
    ) -> Result<()> {
        let errors: Vec<String> = audit_view(&spec, &view)
            .iter()
            .filter(|f| f.is_error())
            .map(|f| f.to_string())
            .collect();
        if !errors.is_empty() {
            return Err(Error::AuditFailed(errors.join("; ")));
        }
        self.policies.insert(group.into(), Policy { spec, view });
        Ok(())
    }

    /// Registered group names.
    pub fn groups(&self) -> impl Iterator<Item = &str> {
        self.policies.keys().map(String::as_str)
    }

    /// The view DTD text exposed to a group (σ stays hidden).
    pub fn exposed_view_dtd(&self, group: &str) -> Result<String> {
        Ok(self.policy(group)?.view.view_dtd_to_string())
    }

    /// The derived security view of a group (for inspection).
    pub fn view(&self, group: &str) -> Result<&SecurityView> {
        Ok(&self.policy(group)?.view)
    }

    /// The registered access specification of a group. Together with
    /// [`PolicyRegistry::view`], this lets long-lived callers (the
    /// `sxv serve` daemon) build one [`crate::SecureEngine`] per group
    /// borrowing from the registry.
    pub fn spec(&self, group: &str) -> Result<&AccessSpec> {
        Ok(&self.policy(group)?.spec)
    }

    /// Translate a group's view query into a document query
    /// (rewrite + optimize; recursive views rewrite to Kleene-closure
    /// expressions directly, so no document height is needed).
    pub fn translate(&self, group: &str, p: &Path) -> Result<Path> {
        let policy = self.policy(group)?;
        let rewritten = rewrite(&policy.view, p)?;
        optimize(policy.spec.dtd(), &rewritten)
    }

    /// Answer a group's query over the shared document.
    pub fn answer(&self, group: &str, doc: &Document, p: &Path) -> Result<Vec<NodeId>> {
        let translated = self.translate(group, p)?;
        Ok(eval_at_root(doc, &translated))
    }

    fn policy(&self, group: &str) -> Result<&Policy> {
        self.policies
            .get(group)
            .ok_or_else(|| Error::NoView(format!("no policy registered for group {group:?}")))
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::parse;

    fn dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            "<!ELEMENT r (pub, sec, fin)>\
             <!ELEMENT pub (#PCDATA)><!ELEMENT sec (#PCDATA)><!ELEMENT fin (#PCDATA)>",
            "r",
        )
        .unwrap()
    }

    #[test]
    fn groups_get_disjoint_slices() {
        let dtd = dtd();
        let doc = parse_xml("<r><pub>p</pub><sec>s</sec><fin>f</fin></r>").unwrap();
        let mut reg = PolicyRegistry::new();
        reg.register(
            "public",
            AccessSpec::builder(&dtd).deny("r", "sec").deny("r", "fin").build().unwrap(),
        )
        .unwrap();
        reg.register("finance", AccessSpec::builder(&dtd).deny("r", "sec").build().unwrap())
            .unwrap();
        assert_eq!(reg.groups().collect::<Vec<_>>(), ["finance", "public"]);

        let q = parse("*").unwrap();
        let public = reg.answer("public", &doc, &q).unwrap();
        let finance = reg.answer("finance", &doc, &q).unwrap();
        assert_eq!(public.len(), 1);
        assert_eq!(finance.len(), 2);
        // View DTDs differ per group.
        assert!(!reg.exposed_view_dtd("public").unwrap().contains("fin"));
        assert!(reg.exposed_view_dtd("finance").unwrap().contains("fin"));
    }

    #[test]
    fn unknown_group_errors() {
        let reg = PolicyRegistry::new();
        assert!(reg.exposed_view_dtd("ghost").is_err());
        let doc = parse_xml("<r/>").unwrap();
        assert!(reg.answer("ghost", &doc, &Path::Wildcard).is_err());
    }

    #[test]
    fn leaky_hand_authored_view_rejected_at_load() {
        use crate::view::def::{ViewContent, ViewItem};
        let dtd = dtd();
        let spec = AccessSpec::builder(&dtd).deny("r", "sec").build().unwrap();
        // A hand-written view that exposes the denied `sec` type.
        let mut sigma = std::collections::BTreeMap::new();
        for child in ["pub", "sec", "fin"] {
            sigma.insert(("r".to_string(), child.to_string()), parse(child).unwrap());
        }
        let view = crate::view::def::SecurityView::new(
            "r".into(),
            vec![
                (
                    "r".into(),
                    ViewContent::Seq(vec![
                        ViewItem::One("pub".into()),
                        ViewItem::One("sec".into()),
                        ViewItem::One("fin".into()),
                    ]),
                ),
                ("pub".into(), ViewContent::Str),
                ("sec".into(), ViewContent::Str),
                ("fin".into(), ViewContent::Str),
            ],
            sigma,
        );
        let mut reg = PolicyRegistry::new();
        let err = reg.register_view("leaky", spec.clone(), view).unwrap_err();
        assert!(matches!(err, Error::AuditFailed(_)), "{err:?}");
        assert!(err.to_string().contains("sec"), "{err}");
        // The derived view for the same spec is accepted.
        let derived = derive_view(&spec).unwrap();
        reg.register_view("ok", spec, derived).unwrap();
    }

    #[test]
    fn reregistering_replaces_policy() {
        let dtd = dtd();
        let doc = parse_xml("<r><pub>p</pub><sec>s</sec><fin>f</fin></r>").unwrap();
        let mut reg = PolicyRegistry::new();
        reg.register("g", AccessSpec::builder(&dtd).deny("r", "sec").build().unwrap()).unwrap();
        assert_eq!(reg.answer("g", &doc, &parse("*").unwrap()).unwrap().len(), 2);
        reg.register("g", AccessSpec::builder(&dtd).build().unwrap()).unwrap();
        assert_eq!(reg.answer("g", &doc, &parse("*").unwrap()).unwrap().len(), 3);
    }
}

//! # Accessibility-bitmap artifacts for annotation-based serving
//!
//! The third serving approach ([`crate::Approach::Annotate`]) answers
//! view queries by evaluating them **directly over the document**,
//! filtering every step through an [`AccessView`] — a per-(spec, doc)
//! record of which document nodes appear in the §3.3 materialized view,
//! under which label, and under which view parent. This module builds
//! that artifact by mirroring the materialization procedure's top-down
//! σ expansion, without constructing a view document: membership and
//! view-parent edges are recorded into dense [`sxv_xml::NodeBitmap`]s
//! and flat tables instead.
//!
//! The expansion is *tolerant* where §3.3 aborts (cases 3–4: a `One`
//! item or `Choice` selecting more than one node records them all), so
//! an artifact exists for every document; on documents where
//! materialization succeeds — the only ones on which view-query
//! semantics is defined — the recorded membership coincides with the
//! materialized view's source mapping, which is what makes annotate
//! answers equal rewrite answers (pinned by the workspace property
//! suite).

use crate::accessibility::compute_accessibility;
use crate::spec::AccessSpec;
use crate::view::def::{SecurityView, ViewContent};
use std::collections::BTreeMap;
use std::time::Instant;
use sxv_xml::{DocIndex, Document, NodeId};
use sxv_xpath::{eval, is_dummy_label, AccessView};

/// Build the [`AccessView`] of `doc` under `spec` / `view`: one §3.2
/// accessibility pass (index-accelerated when `index` is given), then
/// one top-down σ expansion recording view membership, dummy renames,
/// view parents and visible attributes.
pub fn build_access_view(
    spec: &AccessSpec,
    view: &SecurityView,
    doc: &Document,
    index: Option<&DocIndex>,
) -> AccessView {
    let started = Instant::now();
    let accessible = compute_accessibility(spec, doc, index);
    let mut av = AccessView::new(doc.len());
    av.set_accessible_count(accessible.count_ones());
    let mut attrs = BTreeMap::new();
    for (name, _) in view.productions() {
        let visible = view.visible_attributes(name);
        if !visible.is_empty() {
            attrs.insert(name.clone(), visible.to_vec());
        }
    }
    av.set_visible_attrs(attrs);
    let Some(root) = doc.root_opt() else {
        av.finalize();
        av.set_build_micros(started.elapsed().as_micros() as u64);
        return av;
    };
    av.record_root(root);
    // (view label, source node) pairs still to expand. Every pushed
    // source is a strict descendant of its parent's source and each
    // document node is recorded (hence pushed) at most once, so the
    // loop terminates in at most `doc.len()` expansions.
    let mut stack: Vec<(&str, NodeId)> = vec![(view.root(), root)];
    while let Some((label, src)) = stack.pop() {
        let Some(production) = view.production(label) else { continue };
        match production {
            ViewContent::Empty => {}
            ViewContent::Str => {
                // §3.3 case (2): the text children of the source.
                for &c in doc.children(src) {
                    if doc.is_text(c) && !av.is_recorded(c) {
                        av.record_member(c, src, false);
                    }
                }
            }
            content => {
                for child_label in content.child_types() {
                    let Some(sigma) = view.sigma(label, child_label) else { continue };
                    for hit in eval(doc, sigma, &[src]) {
                        // σ paths only descend, but guard the invariants
                        // the traversal relies on anyway.
                        if hit <= src {
                            continue;
                        }
                        // Real-labelled children extract accessible
                        // nodes only; dummies rename inaccessible ones
                        // (the same filter materialization applies).
                        if !is_dummy_label(child_label) && !accessible.contains(hit) {
                            continue;
                        }
                        if av.is_recorded(hit) {
                            continue;
                        }
                        if is_dummy_label(child_label) {
                            av.record_dummy(hit, src, child_label);
                        } else {
                            av.record_member(hit, src, doc.is_element(hit));
                        }
                        stack.push((child_label, hit));
                    }
                }
            }
        }
    }
    av.finalize();
    av.set_build_micros(started.elapsed().as_micros() as u64);
    av
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use crate::view::materialize::materialize;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;

    fn hospital_dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    fn nurse_spec() -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    fn hospital_doc() -> Document {
        parse_xml(
            r#"<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Ann</name><wardNo>6</wardNo>
          <treatment><trial><bill>100</bill></trial></treatment>
        </patient>
      </patientInfo>
      <test>t1</test>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>6</wardNo>
        <treatment><regular><bill>70</bill><medication>m1</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Sue</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo/><test>t2</test></clinicalTrial>
    <patientInfo>
      <patient><name>Cat</name><wardNo>7</wardNo>
        <treatment><regular><bill>30</bill><medication>m2</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo/>
  </dept>
</hospital>"#,
        )
        .unwrap()
    }

    /// The recorded membership must coincide with the materialized
    /// view's source mapping: same member sources, same dummy sources,
    /// same view-parent edges.
    #[test]
    fn membership_mirrors_materialization() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let idx = DocIndex::new(&doc).unwrap();
        let av = build_access_view(&spec, &view, &doc, Some(&idx));
        let m = materialize(&spec, &view, &doc).unwrap();

        use std::collections::BTreeSet;
        let mut member_sources: BTreeSet<NodeId> = BTreeSet::new();
        let mut dummy_sources: BTreeSet<NodeId> = BTreeSet::new();
        for id in m.doc.all_ids() {
            let dummy = m.doc.label_opt(id).map(SecurityView::is_dummy).unwrap_or(false);
            if dummy {
                dummy_sources.insert(m.source_of(id));
            } else {
                member_sources.insert(m.source_of(id));
            }
        }
        assert_eq!(av.members().to_ids(), member_sources.into_iter().collect::<Vec<_>>());
        assert_eq!(av.dummies().to_ids(), dummy_sources.into_iter().collect::<Vec<_>>());
        // View parents: the source of a view node's parent.
        for id in m.doc.all_ids() {
            if let Some(p) = m.doc.parent(id) {
                assert_eq!(
                    av.view_parent(m.source_of(id)),
                    Some(m.source_of(p)),
                    "view parent of {:?}",
                    m.source_of(id)
                );
            }
        }
        assert_eq!(av.accessible_count(), av.member_count(), "all members accessible here");
    }

    #[test]
    fn indexed_and_unindexed_builds_agree() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let idx = DocIndex::new(&doc).unwrap();
        let a = build_access_view(&spec, &view, &doc, Some(&idx));
        let b = build_access_view(&spec, &view, &doc, None);
        assert_eq!(a.members().to_ids(), b.members().to_ids());
        assert_eq!(a.dummies().to_ids(), b.dummies().to_ids());
        assert!(a.bytes() > 0);
    }

    #[test]
    fn empty_document_builds_empty_artifact() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let av = build_access_view(&spec, &view, &Document::new(), None);
        assert_eq!(av.member_count(), 0);
        assert!(av.root().is_none());
    }
}

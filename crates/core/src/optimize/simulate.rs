//! Qualifier-aware graph simulation on image graphs — §5.1, Prop. 5.1.
//!
//! `simulated_by(g1, g2)` decides whether `g1`'s root is simulated by
//! `g2`'s root:
//!
//! 1. the roots must be the same DTD node (same label);
//! 2. every non-qualifier child of a `g1` node must be simulated by a
//!    same-label child of the matching `g2` node;
//! 3. for every qualifier `y` attached in `g2`, `g1` must carry a
//!    qualifier `x` that *implies* it — the direction flips: `y`'s graph
//!    must be simulated by `x`'s graph (and `=c` constants must agree as
//!    described on [`crate::optimize::image::QualImage`]).
//!
//! Because both graphs live over the same DTD, a node can only be
//! simulated by the node with the same index, so the fixpoint runs over
//! the common node set. The extra *target containment* check
//! (`targets(g1) ⊆ targets(g2)`) makes the test sound for result-set
//! containment rather than mere path-prefix containment.

use crate::optimize::image::{ImageGraph, QualImage};
use std::collections::BTreeSet;

/// Prop. 5.1 test: does `g2` simulate `g1` (i.e. is `p1 ⊆ p2` certified)?
pub fn simulated_by(g1: &ImageGraph, g2: &ImageGraph) -> bool {
    if g1.root != g2.root {
        return false;
    }
    // Result containment requires target containment.
    let t2: BTreeSet<usize> = g2.targets.iter().copied().collect();
    if !g1.targets.iter().all(|t| t2.contains(t)) {
        return false;
    }
    // Fixpoint over the nodes of g1: sim[n] = "node n of g1 is simulated
    // by node n of g2". Start optimistic, remove violations.
    let nodes = g1.nodes();
    let g2_nodes: BTreeSet<usize> = g2.nodes().into_iter().collect();
    let mut sim: BTreeSet<usize> = nodes.iter().copied().filter(|n| g2_nodes.contains(n)).collect();
    loop {
        let mut changed = false;
        let current = sim.clone();
        for &n in &nodes {
            if !current.contains(&n) {
                continue;
            }
            let ok = node_ok(g1, g2, n, &current);
            if !ok {
                sim.remove(&n);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sim.contains(&g1.root)
}

fn node_ok(g1: &ImageGraph, g2: &ImageGraph, n: usize, sim: &BTreeSet<usize>) -> bool {
    // (2) Every g1-edge must exist in g2 with a simulated endpoint.
    for c in g1.children(n) {
        let mirrored = g2.children(n).any(|c2| c2 == c) && sim.contains(&c);
        if !mirrored {
            return false;
        }
    }
    // (3) Every g2-qualifier must be implied by some g1-qualifier.
    for y in g2.quals_at(n) {
        let implied = g1.quals_at(n).any(|x| qual_implies(x, y));
        if !implied {
            return false;
        }
    }
    true
}

/// Does qualifier `x` imply qualifier `y`?
/// `[px (= cx)]` implies `[py (= cy)]` iff `px ⊆ py` — tested by the
/// recursive simulation `image(px) ⊑ image(py)` (this is the direction
/// flip of Prop. 5.1's condition (3)) — and the constants are compatible:
/// `y` unconstrained, or both constrain to the same value.
fn qual_implies(x: &QualImage, y: &QualImage) -> bool {
    let consts_ok = match (&y.eq_const, &x.eq_const) {
        (None, _) => true,
        (Some(cy), Some(cx)) => cy == cx,
        (Some(_), None) => false,
    };
    consts_ok && simulated_by(&x.graph, &y.graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize::image::image;
    use crate::rewrite::ViewGraph;
    use sxv_dtd::parse_dtd;
    use sxv_xpath::parse;

    /// Fig. 9(a): a → b, c; b → d; c → d; d → e, f; e → g; f → g.
    fn fig9() -> ViewGraph {
        let dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (d)>\
             <!ELEMENT d (e, f)><!ELEMENT e (g)><!ELEMENT f (g)><!ELEMENT g EMPTY>",
            "a",
        )
        .unwrap();
        ViewGraph::from_dtd(&dtd)
    }

    fn img(g: &ViewGraph, q: &str) -> ImageGraph {
        let a = g.node_by_label("a").unwrap();
        image(g, &parse(q).unwrap(), a).unwrap()
    }

    /// Example 5.3 (with the paper's [b] qualifier dropped — it is true at
    /// `a` and Example 5.2 removes it before building the images).
    #[test]
    fn example_5_3_containments() {
        let g = fig9();
        let p1 = img(&g, "*/d/*/g");
        let p2a = img(&g, "b/d/(e | f)/g"); // one union-free branch pair
        let p2b = img(&g, "c/d/(e | f)/g");
        let p3a = img(&g, "b/d/e/g");
        let p3b = img(&g, "b/d/f/g");
        // p2, p3 branches are simulated by p1's image.
        for sub in [&p2a, &p2b, &p3a, &p3b] {
            assert!(simulated_by(sub, &p1), "branch must be ⊑ p1");
        }
        // p3's branches are simulated by p2's b-branch.
        assert!(simulated_by(&p3a, &p2a));
        assert!(simulated_by(&p3b, &p2a));
        // p1 is NOT simulated by p3's branches (approximation direction).
        assert!(!simulated_by(&p1, &p3a));
    }

    #[test]
    fn targets_must_be_contained() {
        let g = fig9();
        // b's edges are a subset of b/d's, but the results differ:
        let small = img(&g, "b");
        let longer = img(&g, "b/d");
        assert!(!simulated_by(&small, &longer), "a ≠ target containment");
        assert!(!simulated_by(&longer, &small));
        // Identical queries simulate both ways.
        assert!(simulated_by(&small, &img(&g, "b")));
    }

    #[test]
    fn qualifier_direction_flips() {
        let g = fig9();
        // b[d] ⊆ b (dropping a qualifier enlarges), but b ⊄ b[d].
        let constrained = img(&g, "b[d]");
        let plain = img(&g, "b");
        assert!(simulated_by(&constrained, &plain));
        assert!(!simulated_by(&plain, &constrained));
        // Same qualifier both sides: fine.
        assert!(simulated_by(&constrained, &img(&g, "b[d]")));
    }

    #[test]
    fn qualifier_implication_via_containment() {
        let g = fig9();
        // [d/e] implies [d/*]: b[d/e] ⊆ b[d/*]... wildcard target set {e,f}
        // ⊇ {e}: the inner flipped test must accept.
        let strong = img(&g, "b[d/e]");
        let weak = img(&g, "b[d/*]");
        assert!(simulated_by(&strong, &weak));
        assert!(!simulated_by(&weak, &strong));
    }

    #[test]
    fn eq_constants_respected() {
        let g = fig9();
        let c1 = img(&g, "b[d='1']");
        let c2 = img(&g, "b[d='2']");
        let exists = img(&g, "b[d]");
        assert!(simulated_by(&c1, &exists), "[d='1'] implies [d]");
        assert!(!simulated_by(&exists, &c1), "[d] does not imply [d='1']");
        assert!(!simulated_by(&c1, &c2), "different constants");
        assert!(simulated_by(&c1, &img(&g, "b[d='1']")));
    }

    #[test]
    fn opaque_qualifiers_compare_by_equality() {
        let g = fig9();
        let n1 = img(&g, "b[not(d)]");
        let n2 = img(&g, "b[not(d)]");
        let other = img(&g, "b[not(c)]");
        assert!(simulated_by(&n1, &n2));
        assert!(!simulated_by(&n1, &other));
        assert!(simulated_by(&n1, &img(&g, "b")), "dropping the qualifier enlarges");
    }

    #[test]
    fn different_roots_never_simulate() {
        let g = fig9();
        let at_a = img(&g, "b");
        let b = g.node_by_label("b").unwrap();
        let at_b = image(&g, &parse("d").unwrap(), b).unwrap();
        assert!(!simulated_by(&at_a, &at_b));
    }
}

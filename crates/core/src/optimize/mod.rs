//! Algorithm `optimize` — §5.2, Fig. 10 of the paper.
//!
//! Rewrites an XPath query into an equivalent but cheaper query over
//! instances of a document DTD, by "evaluating" the query over the DTD
//! graph (cases 1–7 of Fig. 10):
//!
//! * dead sub-queries prune to `∅` (non-existence constraints — the §6
//!   example Q4 collapses to the empty query via the exclusive
//!   constraint);
//! * wildcards and `//` expand into the precise label paths the DTD
//!   allows (`recProc`, shared with the rewriting module);
//! * qualifiers simplify against co-existence / exclusive / non-existence
//!   constraints ([`constraints::QualEval::evaluate`] — the §6 example Q3
//!   drops its qualifier entirely);
//! * union arms that are (approximately but soundly) contained in their
//!   sibling are dropped, using the Prop. 5.1 simulation on image graphs.
//!
//! Like the rewriting module, the dynamic program tables results *per
//! target node* rather than merging all reached nodes into one expression
//! (see the `crate::rewrite` module docs for why the merged
//! combination can be unsound).
//!
//! Recursive document DTDs are outside Fig. 10's DAG setting (§5.1
//! restricts to non-recursive DTDs and refers back to §4.2), but the
//! shared `recProc` now falls back to Kleene state elimination on
//! cyclic graphs, so [`optimize`] handles them directly — `//` expands
//! into `(…)*` closure expressions instead of requiring an unfolding
//! height. [`optimize_with_height`] (the §4.2 unfolding) is retained as
//! a differential-testing oracle. The Prop. 5.1 containment test
//! ([`approx_contained`]) stays DAG-only: its image-graph simulation is
//! sound but conservative, and simply declines to certify on recursion
//! (and on closure-bearing queries), so union reduction never fires
//! unsoundly there.

pub mod constraints;
pub mod image;
pub mod simulate;

use crate::error::Result;
use crate::rewrite::{continue_from_text, kleene_reach, Target, ViewGraph};
use constraints::QualEval;
use std::collections::{BTreeMap, HashMap};
use sxv_dtd::{Dtd, DtdGraph};
use sxv_xpath::{Path, Qualifier};

/// Optimize `p` for evaluation at the root of instances of `dtd`.
/// Recursive DTDs are handled directly: `//` expands through Kleene
/// closures instead of requiring a height-bounded unfolding.
pub fn optimize(dtd: &Dtd, p: &Path) -> Result<Path> {
    let graph = ViewGraph::from_dtd(dtd);
    optimize_over(dtd, &graph, p)
}

/// Optimize over a recursive document DTD by unfolding it to the height
/// of the concrete document (§4.2 applied to the optimization side).
/// Kept as a differential-testing oracle for the direct closure-based
/// expansion; also valid for DAG DTDs, where it bounds path lengths.
pub fn optimize_with_height(dtd: &Dtd, p: &Path, height: usize) -> Result<Path> {
    let graph = ViewGraph::from_dtd_unfolded(dtd, height)?;
    optimize_over(dtd, &graph, p)
}

/// Approximate XPath containment in the presence of a (DAG) DTD —
/// Prop. 5.1 as a standalone test: `true` certifies `p1 ⊆ p2` at the DTD
/// root over every instance; `false` means "not certified" (the test is
/// sound but incomplete, as Example 5.3 illustrates).
pub fn approx_contained(dtd: &Dtd, p1: &Path, p2: &Path) -> bool {
    if DtdGraph::new(dtd).is_recursive() {
        return false;
    }
    let graph = ViewGraph::from_dtd(dtd);
    let eval = QualEval { graph: &graph, dtd };
    eval.contained_in(p1, p2, graph.root_node())
}

fn optimize_over(dtd: &Dtd, graph: &ViewGraph, p: &Path) -> Result<Path> {
    let normalized = normalize_filters(p);
    let mut o = Optimizer {
        eval: QualEval { graph, dtd },
        graph,
        memo: HashMap::new(),
        rec: HashMap::new(),
    };
    let table = o.opt(&normalized, graph.root_node());
    Ok(Path::union_all(table.into_values()))
}

/// Rewrite `p[q]` (general base) to `p/ε[q]`, so the DP only meets
/// qualifiers at `ε` (Fig. 10 case 7 is stated for `ε[q]`).
fn normalize_filters(p: &Path) -> Path {
    match p {
        Path::Empty | Path::EmptySet | Path::Doc | Path::Label(_) | Path::Wildcard | Path::Text => {
            p.clone()
        }
        Path::Step(a, b) => Path::step(normalize_filters(a), normalize_filters(b)),
        Path::Descendant(inner) => Path::descendant(normalize_filters(inner)),
        Path::Closure(inner) => Path::closure(normalize_filters(inner)),
        Path::Union(a, b) => Path::union(normalize_filters(a), normalize_filters(b)),
        Path::Filter(base, q) => {
            let nq = normalize_qual(q);
            match &**base {
                Path::Empty => Path::filter(Path::Empty, nq),
                _ => Path::step(
                    normalize_filters(base),
                    Path::Filter(Box::new(Path::Empty), Box::new(nq)),
                ),
            }
        }
    }
}

fn normalize_qual(q: &Qualifier) -> Qualifier {
    match q {
        Qualifier::Path(p) => Qualifier::path(normalize_filters(p)),
        Qualifier::Eq(p, c) => Qualifier::Eq(normalize_filters(p), c.clone()),
        Qualifier::And(a, b) => Qualifier::and(normalize_qual(a), normalize_qual(b)),
        Qualifier::Or(a, b) => Qualifier::or(normalize_qual(a), normalize_qual(b)),
        Qualifier::Not(inner) => Qualifier::not(normalize_qual(inner)),
        other => other.clone(),
    }
}

type Table = BTreeMap<Target, Path>;

struct Optimizer<'a> {
    eval: QualEval<'a>,
    graph: &'a ViewGraph,
    memo: HashMap<(usize, usize), Table>,
    rec: HashMap<usize, HashMap<usize, Path>>,
}

impl<'a> Optimizer<'a> {
    /// `opt(p', A)` as a per-target table.
    fn opt(&mut self, p: &Path, node: usize) -> Table {
        let key = (p as *const Path as usize, node);
        if let Some(hit) = self.memo.get(&key) {
            return hit.clone();
        }
        let mut out = Table::new();
        match p {
            // Case (1).
            Path::Empty => {
                out.insert(Target::Node(node), Path::Empty);
            }
            Path::EmptySet => {}
            Path::Doc => {
                out.insert(Target::Node(self.graph.doc_node()), Path::Doc);
            }
            // Case (2): prune labels the DTD forbids.
            Path::Label(l) => {
                for c in self.graph.children_of(node) {
                    if self.graph.label_of(c) == l {
                        out.insert(Target::Node(c), Path::label(l.clone()));
                    }
                }
            }
            // Case (3): expand the wildcard into the allowed labels.
            Path::Wildcard => {
                for c in self.graph.children_of(node) {
                    out.insert(Target::Node(c), Path::label(self.graph.label_of(c).to_string()));
                }
            }
            // text() survives only at str-production nodes.
            Path::Text => {
                if self.graph.has_text(node) {
                    out.insert(Target::TextOf(node), Path::Text);
                }
            }
            // Case (4).
            Path::Step(p1, p2) => {
                let first = self.opt(p1, node);
                for (t, q1) in first {
                    match t {
                        Target::Node(v) => {
                            for (w, q2) in self.opt(p2, v) {
                                merge(&mut out, w, Path::step(q1.clone(), q2));
                            }
                        }
                        Target::TextOf(_) => {
                            let q2 = continue_from_text(p2);
                            let composed = Path::step(q1, q2);
                            if !composed.is_empty_set() {
                                merge(&mut out, t, composed);
                            }
                        }
                    }
                }
            }
            // Case (5): expand `//` through the precomputed recrw paths.
            Path::Descendant(p1) => {
                let recrw = self.rec_info(node).clone();
                let reach: Vec<usize> = recrw.keys().copied().collect();
                // descendant-or-self includes text nodes: a nullable `p1`
                // keeps them, so str-production nodes contribute their text
                // children too (mirrors the rewrite module's `//` case).
                let text_cont = continue_from_text(p1);
                for b in reach {
                    let prefix = recrw[&b].clone();
                    if prefix.is_empty_set() {
                        continue;
                    }
                    for (w, q) in self.opt(p1, b) {
                        merge(&mut out, w, Path::step(prefix.clone(), q));
                    }
                    if self.graph.has_text(b) && !text_cont.is_empty_set() {
                        merge(
                            &mut out,
                            Target::TextOf(b),
                            Path::step(prefix, Path::step(Path::Text, text_cont.clone())),
                        );
                    }
                }
            }
            // Kleene closure: discover the graph whose edge x→y is p1's
            // per-target optimization at x, then Kleene-eliminate it
            // (shared with the rewrite module's closure translation).
            // Text targets are closure endpoints — text is a leaf.
            Path::Closure(p1) => {
                let mut nodes: Vec<usize> = vec![node];
                let mut edges: HashMap<(usize, usize), Path> = HashMap::new();
                let mut texts: Vec<(usize, usize, Path)> = Vec::new();
                let mut i = 0;
                while i < nodes.len() {
                    let x = nodes[i];
                    i += 1;
                    for (t, q) in self.opt(p1, x) {
                        match t {
                            Target::Node(y) => {
                                match edges.remove(&(x, y)) {
                                    Some(prev) => {
                                        edges.insert((x, y), Path::union(prev, q));
                                    }
                                    None => {
                                        edges.insert((x, y), q);
                                    }
                                }
                                if !nodes.contains(&y) {
                                    nodes.push(y);
                                }
                            }
                            Target::TextOf(ty) => texts.push((x, ty, q)),
                        }
                    }
                }
                let reach_expr = kleene_reach(&nodes, &edges, node);
                for (&y, e) in &reach_expr {
                    if !e.is_empty_set() {
                        merge(&mut out, Target::Node(y), e.clone());
                    }
                }
                for (x, ty, q) in texts {
                    let prefix = &reach_expr[&x];
                    if !prefix.is_empty_set() {
                        merge(&mut out, Target::TextOf(ty), Path::step(prefix.clone(), q));
                    }
                }
            }
            // Case (6): containment-based union reduction.
            Path::Union(p1, p2) => {
                let t1 = self.opt(p1, node);
                let t2 = self.opt(p2, node);
                let o1 = Path::union_all(t1.values().cloned());
                let o2 = Path::union_all(t2.values().cloned());
                if self.eval.contained_in(&o1, &o2, node) {
                    out = t2;
                } else if self.eval.contained_in(&o2, &o1, node) {
                    out = t1;
                } else {
                    out = t1;
                    for (w, q) in t2 {
                        merge(&mut out, w, q);
                    }
                }
            }
            // Case (7): qualifier evaluation against DTD constraints.
            Path::Filter(base, q) => {
                debug_assert!(matches!(**base, Path::Empty), "filters normalized to ε[q]");
                let opt_q = self.opt_qual(q, node);
                match opt_q {
                    Qualifier::False => {}
                    Qualifier::True => {
                        out.insert(Target::Node(node), Path::Empty);
                    }
                    simplified => {
                        out.insert(Target::Node(node), Path::filter(Path::Empty, simplified));
                    }
                }
            }
        }
        self.memo.insert(key, out.clone());
        out
    }

    /// Optimize a qualifier: recursively optimize its paths (pruning dead
    /// branches), then apply the constraint/containment simplifications.
    fn opt_qual(&mut self, q: &Qualifier, node: usize) -> Qualifier {
        let structural = match q {
            Qualifier::Path(p) => {
                let t = self.opt(p, node);
                Qualifier::path(Path::union_all(t.into_values()))
            }
            Qualifier::Eq(p, c) => {
                let t = self.opt(p, node);
                let u = Path::union_all(t.into_values());
                if u.is_empty_set() {
                    Qualifier::False
                } else {
                    Qualifier::Eq(u, c.clone())
                }
            }
            Qualifier::And(a, b) => Qualifier::and(self.opt_qual(a, node), self.opt_qual(b, node)),
            Qualifier::Or(a, b) => Qualifier::or(self.opt_qual(a, node), self.opt_qual(b, node)),
            Qualifier::Not(inner) => Qualifier::not(self.opt_qual(inner, node)),
            other => other.clone(),
        };
        // `evaluate` re-runs truth analysis on the *original* shape too —
        // co-existence facts are easier to see before path expansion — so
        // try both and prefer a definite answer.
        match self.eval.truth(q, node) {
            Some(true) => Qualifier::True,
            Some(false) => Qualifier::False,
            None => self.eval.evaluate(&structural, node),
        }
    }

    /// Factored `recrw(node, ·)` over the document-DTD graph, computed via
    /// the shared `recProc` and cached.
    fn rec_info(&mut self, node: usize) -> &HashMap<usize, Path> {
        if !self.rec.contains_key(&node) {
            let (_, recrw) = self.graph.rec_proc_public(node);
            self.rec.insert(node, recrw);
        }
        &self.rec[&node]
    }
}

fn merge(table: &mut Table, target: Target, q: Path) {
    match table.get(&target) {
        Some(existing) => {
            let merged = Path::union(existing.clone(), q);
            table.insert(target, merged);
        }
        None => {
            table.insert(target, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::{eval_at_root, parse};

    fn fig9_dtd() -> Dtd {
        parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (d)>\
             <!ELEMENT d (e, f)><!ELEMENT e (g)><!ELEMENT f (g)><!ELEMENT g EMPTY>",
            "a",
        )
        .unwrap()
    }

    #[test]
    fn wildcards_expand_to_labels() {
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("*/d").unwrap()).unwrap();
        let s = o.to_string();
        assert!(s.contains('b') && s.contains('c'), "{s}");
        assert!(!s.contains('*'), "{s}");
    }

    #[test]
    fn dead_labels_prune_to_empty() {
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("b/zzz").unwrap()).unwrap();
        assert!(o.is_empty_set());
        let o2 = optimize(&dtd, &parse("(b/zzz | c)/d").unwrap()).unwrap();
        assert_eq!(o2.to_string(), "c/d");
    }

    /// Example 5.4's shape: a union where one side is contained in the
    /// other collapses to the container.
    #[test]
    fn union_containment_reduction() {
        let dtd = fig9_dtd();
        let p = parse("*/d | b/d[e]").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        // b/d[e] ⊆ */d, and [e] is forced true at d anyway (co-existence).
        let doc = parse_xml(
            "<a><b><d><e><g/></e><f><g/></f></d></b><c><d><e><g/></e><f><g/></f></d></c></a>",
        )
        .unwrap();
        assert_eq!(eval_at_root(&doc, &o), eval_at_root(&doc, &p), "optimized ≠ original: {o}");
        let s = o.to_string();
        assert!(!s.contains('['), "qualifier eliminated: {s}");
    }

    /// §6's Q3 pattern: co-existence drops the qualifier.
    #[test]
    fn coexistence_drops_qualifier() {
        let dtd = parse_dtd(
            "<!ELEMENT adex (head)><!ELEMENT head (buyer-info)>\
             <!ELEMENT buyer-info (company-id, contact-info)>\
             <!ELEMENT company-id (#PCDATA)><!ELEMENT contact-info (#PCDATA)>",
            "adex",
        )
        .unwrap();
        let p = parse("head/buyer-info[company-id and contact-info]").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        assert_eq!(o.to_string(), "head/buyer-info");
    }

    /// §6's Q4 pattern: the exclusive constraint empties the query.
    #[test]
    fn exclusive_constraint_empties_query() {
        let dtd = parse_dtd(
            "<!ELEMENT real-estate (house | apartment)>\
             <!ELEMENT house (price)><!ELEMENT apartment (unit)>\
             <!ELEMENT price (#PCDATA)><!ELEMENT unit (#PCDATA)>",
            "real-estate",
        )
        .unwrap();
        let p = parse(".[house/price and apartment/unit]").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        assert!(o.is_empty_set(), "got {o}");
    }

    #[test]
    fn descendant_expands_precisely() {
        let dtd = parse_dtd(
            "<!ELEMENT adex (head, body)><!ELEMENT head (buyer-info)>\
             <!ELEMENT body (#PCDATA)>\
             <!ELEMENT buyer-info (contact-info)><!ELEMENT contact-info (#PCDATA)>",
            "adex",
        )
        .unwrap();
        // Q1 pattern: //buyer-info/contact-info → head/buyer-info/contact-info.
        let o = optimize(&dtd, &parse("//buyer-info/contact-info").unwrap()).unwrap();
        assert_eq!(o.to_string(), "head/buyer-info/contact-info");
    }

    #[test]
    fn equivalence_preserved_on_samples() {
        let dtd = fig9_dtd();
        let doc = parse_xml(
            "<a><b><d><e><g/></e><f><g/></f></d></b><c><d><e><g/></e><f><g/></f></d></c></a>",
        )
        .unwrap();
        for q in [
            "//g",
            "*/d/*/g",
            "b/d/e/g | b/d/f/g",
            ".[b]/c/d",
            "b[d]/d/e",
            "//d[e and f]",
            "//*",
            "b/d | c/d",
            ".[b and c]/b",
        ] {
            let p = parse(q).unwrap();
            let o = optimize(&dtd, &p).unwrap();
            assert_eq!(
                eval_at_root(&doc, &p),
                eval_at_root(&doc, &o),
                "{q} optimized to {o} changed semantics"
            );
        }
    }

    #[test]
    fn recursive_dtd_optimized_directly_with_closure() {
        // a → a | b: `//b` expands through the cycle as a closure and
        // stays correct at any instance depth (no height parameter).
        let dtd = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        let p = parse("//b").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        assert!(o.to_string().contains(")*"), "cycle optimized to a closure: {o}");
        for doc_src in
            ["<a><b/></a>", "<a><a><a><b/></a></a></a>", "<a><a><a><a><a><b/></a></a></a></a></a>"]
        {
            let doc = parse_xml(doc_src).unwrap();
            assert_eq!(eval_at_root(&doc, &p), eval_at_root(&doc, &o), "{doc_src}: {o}");
        }
        // Dead labels still prune on recursive DTDs.
        assert!(optimize(&dtd, &parse("//zzz").unwrap()).unwrap().is_empty_set());
        // Exclusive-choice qualifiers still evaluate at cyclic nodes.
        let excl = optimize(&dtd, &parse("//.[a and b]").unwrap()).unwrap();
        assert!(excl.is_empty_set(), "{excl}");
    }

    #[test]
    fn recursive_dtd_union_arms_survive_optimization() {
        // Regression: over a recursive DTD, the per-label image graphs
        // conflate the two `part` occurrences of the longer arm, so the
        // Prop. 5.1 simulation would certify the shorter arm as contained
        // and union reduction would drop its (real) answers. Containment
        // must decline on cyclic graphs and keep both arms.
        let dtd = parse_dtd(
            "<!ELEMENT bom (assembly*)><!ELEMENT assembly (part*)>\
             <!ELEMENT part (partno, subpart)><!ELEMENT subpart (part*)>\
             <!ELEMENT partno (#PCDATA)>",
            "bom",
        )
        .unwrap();
        let p = parse("assembly/part/partno | assembly/part/subpart/part/partno").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        let doc = parse_xml(
            "<bom><assembly><part><partno>p1</partno><subpart>\
             <part><partno>p2</partno><subpart/></part>\
             </subpart></part></assembly></bom>",
        )
        .unwrap();
        let direct = eval_at_root(&doc, &p);
        assert_eq!(direct.len(), 2, "both depths match");
        assert_eq!(direct, eval_at_root(&doc, &o), "union arm dropped: {o}");
        // Qualifier implication likewise declines on cyclic graphs: in
        // the collapsed image, [partno] would falsely imply
        // [subpart/part/partno] (the image of the longer path gains a
        // direct part → partno edge), and And-reduction would drop the
        // stronger conjunct. Both conjuncts must survive.
        let q = parse("//part[partno and subpart/part/partno]/partno").unwrap();
        let oq = optimize(&dtd, &q).unwrap();
        let shallow =
            parse_xml("<bom><assembly><part><partno>p1</partno><subpart/></part></assembly></bom>")
                .unwrap();
        for d in [&doc, &shallow] {
            assert_eq!(eval_at_root(d, &q), eval_at_root(d, &oq), "qualifier weakened: {oq}");
        }
    }

    #[test]
    fn closure_query_optimized_on_dag() {
        // A user-written closure over a DAG DTD: `(b)*` from the root
        // can iterate at most once (no b → b edge), so the optimizer
        // unrolls it into `ε ∪ b` — no closure survives.
        let dtd = fig9_dtd();
        let p = parse("(b)*/d").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        assert!(!o.to_string().contains(")*"), "DAG closure unrolled: {o}");
        let doc = parse_xml(
            "<a><b><d><e><g/></e><f><g/></f></d></b><c><d><e><g/></e><f><g/></f></d></c></a>",
        )
        .unwrap();
        assert_eq!(eval_at_root(&doc, &p), eval_at_root(&doc, &o), "{o}");
    }

    #[test]
    fn recursive_dtd_optimized_with_height() {
        // a → a | b: //b over an instance of height ≤ 3 expands into the
        // bounded chains, and dead labels still prune.
        let dtd = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        let doc = parse_xml("<a><a><a><b/></a></a></a>").unwrap();
        let p = parse("//b").unwrap();
        let o = optimize_with_height(&dtd, &p, doc.height()).unwrap();
        assert_eq!(eval_at_root(&doc, &p), eval_at_root(&doc, &o), "optimized ≠ original: {o}");
        let dead = optimize_with_height(&dtd, &parse("//zzz").unwrap(), doc.height()).unwrap();
        assert!(dead.is_empty_set());
        // Qualifier simplification works at unfolded nodes too: a's
        // production is a disjunction, so [a and b] is false everywhere.
        let excl = optimize_with_height(&dtd, &parse("//.[a and b]").unwrap(), doc.height());
        assert!(excl.unwrap().is_empty_set());
    }

    #[test]
    fn absolute_queries_optimized() {
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("/a/b/d").unwrap()).unwrap();
        let doc = parse_xml(
            "<a><b><d><e><g/></e><f><g/></f></d></b><c><d><e><g/></e><f><g/></f></d></c></a>",
        )
        .unwrap();
        use sxv_xpath::eval_at_document;
        assert_eq!(eval_at_document(&doc, &o), eval_at_document(&doc, &parse("/a/b/d").unwrap()));
    }

    /// Prop. 5.1 as a public API, on Example 5.2's queries.
    #[test]
    fn approx_containment_public_api() {
        let dtd = fig9_dtd();
        let p1 = parse("*/d/*/g").unwrap();
        let p3 = parse("b/d/e/g | b/d/f/g").unwrap();
        assert!(approx_contained(&dtd, &p3, &p1));
        assert!(!approx_contained(&dtd, &p1, &p3));
        // Sound but incomplete: recursive DTDs are never certified.
        let rec = parse_dtd("<!ELEMENT a (a | b)><!ELEMENT b EMPTY>", "a").unwrap();
        assert!(!approx_contained(&rec, &parse("b").unwrap(), &parse("b").unwrap()));
    }

    /// Recursive-DTD bound: Prop. 5.1 assumes a DAG, so recursion refuses
    /// certification for *every* pair — even syntactically identical or
    /// text-targeted ones (the `p1 == p2` shortcut is DAG-only).
    #[test]
    fn approx_containment_recursive_dtd_bounds() {
        let rec = parse_dtd(
            "<!ELEMENT part (part-id, sub-parts)><!ELEMENT sub-parts (part*)>\
             <!ELEMENT part-id (#PCDATA)>",
            "part",
        )
        .unwrap();
        for q in ["part-id", "//part-id", "//text()", "sub-parts/part | //part"] {
            let p = parse(q).unwrap();
            assert!(!approx_contained(&rec, &p, &p), "recursive DTD certified {q}");
        }
    }

    /// `text()` targets fall back to syntactic equality (image graphs are
    /// element-only, so the simulation cannot speak for text nodes).
    #[test]
    fn approx_containment_text_targets() {
        let dtd = fig9_dtd();
        assert!(approx_contained(&dtd, &parse("//text()").unwrap(), &parse("//text()").unwrap()));
        // Semantically b/d//text() ⊆ //text(), but text targets are only
        // certified when identical — sound, not complete.
        assert!(!approx_contained(
            &dtd,
            &parse("b/d//text()").unwrap(),
            &parse("//text()").unwrap()
        ));
        // A text-bearing qualifier keeps the *path* certifiable…
        assert!(!approx_contained(&dtd, &parse("//text()").unwrap(), &parse("//*").unwrap()));
    }

    /// Qualifier-bearing arms: narrowing a path with `[q]` keeps it
    /// contained; the reverse only holds when the DTD forces `q`.
    #[test]
    fn approx_containment_qualifier_arms() {
        // `a`'s content is a *choice*, so [c] is genuinely uncertain at `a`.
        let dtd = parse_dtd(
            "<!ELEMENT r (a*)><!ELEMENT a (c | d)>\
             <!ELEMENT c (#PCDATA)><!ELEMENT d (#PCDATA)>",
            "r",
        )
        .unwrap();
        let a = parse("a").unwrap();
        let a_c = parse("a[c]").unwrap();
        let a_c1 = parse("a[c='1']").unwrap();
        let a_c2 = parse("a[c='2']").unwrap();
        assert!(approx_contained(&dtd, &a_c, &a), "a[c] ⊆ a");
        assert!(!approx_contained(&dtd, &a, &a_c), "a ⊄ a[c]: the choice may pick d");
        assert!(approx_contained(&dtd, &a_c1, &a_c), "a[c='1'] ⊆ a[c]");
        assert!(!approx_contained(&dtd, &a_c1, &a_c2), "different constants");
        // Incompleteness bound: in Fig. 9 every `b` has a `d` child, so
        // semantically b ⊆ b[d] — but the simulation compares qualifier
        // sets structurally and does not discharge [d] against the DTD.
        let fig9 = fig9_dtd();
        assert!(!approx_contained(&fig9, &parse("b").unwrap(), &parse("b[d]").unwrap()));
    }

    /// Union arms on both sides of the containment.
    #[test]
    fn approx_containment_union_arms() {
        let fig9 = fig9_dtd();
        assert!(approx_contained(&fig9, &parse("b/d | c/d").unwrap(), &parse("*/d").unwrap()));
        // Incompleteness bound (the Example 5.3 shape): each left branch
        // must be simulated by a *single* right branch, so `*/d` — whose
        // one image spans both b/d and c/d — is not certified against the
        // union even though the containment holds semantically.
        assert!(!approx_contained(&fig9, &parse("*/d").unwrap(), &parse("b/d | c/d").unwrap()));
        assert!(!approx_contained(&fig9, &parse("b/d | c/d").unwrap(), &parse("b/d").unwrap()));
        // A qualifier-bearing arm inside a union.
        assert!(approx_contained(&fig9, &parse("b/d[e] | c/d").unwrap(), &parse("*/d").unwrap()));
    }

    #[test]
    fn wildcard_at_text_element_prunes() {
        // g has (#PCDATA)-like EMPTY content: */anything below it is dead.
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("b/d/e/g/*").unwrap()).unwrap();
        assert!(o.is_empty_set());
    }

    #[test]
    fn eq_on_dead_path_prunes() {
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("b[zzz='1']").unwrap()).unwrap();
        assert!(o.is_empty_set());
        // Eq on a live path stays.
        let o2 = optimize(&dtd, &parse("b[d='1']").unwrap()).unwrap();
        assert!(o2.to_string().contains("d='1'"), "{o2}");
    }

    #[test]
    fn opaque_boolean_qualifiers_preserved() {
        let dtd = fig9_dtd();
        let p = parse("b[not(d/e)]").unwrap();
        let o = optimize(&dtd, &p).unwrap();
        // d/e always exists (co-existence chain) ⇒ not(d/e) is false ⇒ ∅.
        assert!(o.is_empty_set(), "{o}");
        // A genuinely unknown negation survives.
        let dtd2 = parse_dtd("<!ELEMENT a (b*)><!ELEMENT b EMPTY>", "a").unwrap();
        let o2 = optimize(&dtd2, &parse(".[not(b)]").unwrap()).unwrap();
        assert!(o2.to_string().contains("not"), "{o2}");
    }

    #[test]
    fn text_selector_optimizes_equivalently() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (c)><!ELEMENT c (#PCDATA)>",
            "r",
        )
        .unwrap();
        let doc = parse_xml("<r><a>x</a><b><c>y</c></b></r>").unwrap();
        for q in ["//text()", "a/text()", "//c/text()", "b/text()", ".[a/text()='x']/b"] {
            let p = parse(q).unwrap();
            let o = optimize(&dtd, &p).unwrap();
            assert_eq!(eval_at_root(&doc, &p), eval_at_root(&doc, &o), "{q} → {o}");
        }
        // text() at an element-content node prunes.
        let dead = optimize(&dtd, &parse("b/text()").unwrap()).unwrap();
        assert!(dead.is_empty_set(), "{dead}");
    }

    #[test]
    fn union_of_identical_arms_collapses() {
        let dtd = fig9_dtd();
        let o = optimize(&dtd, &parse("b/d | b/d").unwrap()).unwrap();
        assert_eq!(o.to_string(), "b/d");
    }

    #[test]
    fn nested_qualifier_paths_pruned() {
        let dtd = fig9_dtd();
        // [b/zzz or c] → [c] (zzz cannot exist).
        let o = optimize(&dtd, &parse(".[b/zzz or c]/b").unwrap()).unwrap();
        // c is forced by co-existence: whole qualifier true.
        assert_eq!(o.to_string(), "b");
    }
}

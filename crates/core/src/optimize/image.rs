//! Image graphs — §5.1 of the paper.
//!
//! `image(p, A)` is the subgraph of the DTD graph rooted at `A` consisting
//! of all nodes reached from `A` via `p` together with the paths leading
//! to them; qualifiers hang off their context node as `'[]'`-labelled
//! children (cases 1–8 of §5.1).
//!
//! **Deviation for soundness** (documented in DESIGN.md): the paper merges
//! the image graphs of union branches by node identity, which can create
//! spurious cross-product paths (`a/x/b ∪ c/x/d` admits `a/x/d` in the
//! merged graph), making Proposition 5.1 unsound as stated. We instead
//! decompose a query into *union-free branches* ([`branches`], with a cap
//! to avoid blow-up), build one image per branch, and test containment as
//! `∀ branch₁ ∃ branch₂ : image₁ ⊑ image₂`. Within a union-free branch,
//! per-target merging of step compositions cannot create spurious paths,
//! so branch images are exact path descriptions and the simulation test
//! stays sound.

use crate::rewrite::ViewGraph;
use sxv_xpath::{Path, Qualifier};

/// One qualifier attached to an image-graph node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualImage {
    /// `Some(c)` for `[p = c]`; a `⟨opaque:…⟩` marker for qualifiers
    /// outside the conjunctive fragment (compared by equality only).
    pub eq_const: Option<String>,
    /// Image of the qualifier's path at its context node.
    pub graph: ImageGraph,
}

/// An image graph: a sub-DAG of the DTD graph (node = DTD node index in a
/// [`ViewGraph`]) plus attached qualifiers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ImageGraph {
    /// The context node the image is rooted at.
    pub root: usize,
    /// DTD edges on included paths.
    pub edges: Vec<(usize, usize)>,
    /// Qualifiers attached at nodes.
    pub quals: Vec<(usize, QualImage)>,
    /// Nodes reached by the query itself (its result types).
    pub targets: Vec<usize>,
}

impl ImageGraph {
    fn single(root: usize) -> ImageGraph {
        ImageGraph { root, edges: Vec::new(), quals: Vec::new(), targets: vec![root] }
    }

    fn push_edge(&mut self, from: usize, to: usize) {
        if !self.edges.contains(&(from, to)) {
            self.edges.push((from, to));
        }
    }

    /// Children of `n` within this image.
    pub fn children(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.iter().filter(move |&&(f, _)| f == n).map(|&(_, t)| t)
    }

    /// Qualifiers attached at `n`.
    pub fn quals_at(&self, n: usize) -> impl Iterator<Item = &QualImage> + '_ {
        self.quals.iter().filter(move |&&(at, _)| at == n).map(|(_, q)| q)
    }

    /// All nodes mentioned by the image.
    pub fn nodes(&self) -> Vec<usize> {
        let mut out = vec![self.root];
        for &(f, t) in &self.edges {
            if !out.contains(&f) {
                out.push(f);
            }
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }

    /// Size bound check helper (`|image(p, A)| ≤ |D|·|p|`, §5.1).
    pub fn size(&self) -> usize {
        1 + self.edges.len() + self.quals.iter().map(|(_, q)| 1 + q.graph.size()).sum::<usize>()
    }
}

/// Cap on the number of union-free branches enumerated per query; beyond
/// it the containment test simply gives up (returns "unknown").
pub const BRANCH_CAP: usize = 64;

/// Decompose `p` into union-free branches (distributing `∪` over `/`,
/// `//`, and `[·]`). Returns `None` when the cap is exceeded.
pub fn branches(p: &Path) -> Option<Vec<Path>> {
    let out = match p {
        Path::Empty | Path::EmptySet | Path::Doc | Path::Label(_) | Path::Wildcard | Path::Text => {
            vec![p.clone()]
        }
        Path::Union(a, b) => {
            let mut out = branches(a)?;
            out.extend(branches(b)?);
            out
        }
        Path::Step(a, b) => {
            let left = branches(a)?;
            let right = branches(b)?;
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    out.push(Path::step(l.clone(), r.clone()));
                }
            }
            out
        }
        Path::Descendant(inner) => branches(inner)?.into_iter().map(Path::descendant).collect(),
        // Kleene closures are outside Prop. 5.1's image construction
        // (their walk sets are not captured by a finite sub-DAG of
        // branches); give up, so containment is simply not certified.
        Path::Closure(_) => return None,
        // Qualifiers are not decomposed: they become attached subgraphs.
        Path::Filter(base, q) => {
            branches(base)?.into_iter().map(|b| Path::filter(b, (**q).clone())).collect()
        }
    };
    (out.len() <= BRANCH_CAP).then_some(out)
}

/// Build the image of a union-free branch at `node`. `None` = empty image
/// (the query reaches nothing from `node` in the DTD).
pub fn image(graph: &ViewGraph, p: &Path, node: usize) -> Option<ImageGraph> {
    match p {
        // text() has no DTD-node image; containment involving it is never
        // certified (callers check `contains_text` first).
        Path::Text => None,
        // Closures never reach here on the sound path ([`branches`] and
        // [`qual_images`] opt out first); an empty image is NOT a safe
        // answer for the p2 side of a containment, so this arm must stay
        // unreachable rather than approximate.
        Path::Closure(_) => None,
        // Case (6)-adjacent: ε keeps the context node.
        Path::Empty => Some(ImageGraph::single(node)),
        Path::EmptySet => None,
        Path::Doc => Some(ImageGraph::single(graph.doc_node())),
        // Case (1): a single labelled edge.
        Path::Label(l) => {
            let mut img = ImageGraph::single(node);
            img.targets.clear();
            for c in graph.children_of(node) {
                if graph.label_of(c) == l {
                    img.push_edge(node, c);
                    img.targets.push(c);
                }
            }
            (!img.targets.is_empty()).then_some(img)
        }
        // Case (2): all children.
        Path::Wildcard => {
            let mut img = ImageGraph::single(node);
            img.targets.clear();
            for c in graph.children_of(node) {
                img.push_edge(node, c);
                img.targets.push(c);
            }
            (!img.targets.is_empty()).then_some(img)
        }
        // Case (3): compose, merging at the shared B nodes.
        Path::Step(p1, p2) => {
            let first = image(graph, p1, node)?;
            let mut combined: Option<ImageGraph> = None;
            for &b in &first.targets {
                if let Some(second) = image(graph, p2, b) {
                    let merged = combined.get_or_insert_with(|| ImageGraph {
                        root: first.root,
                        edges: first.edges.clone(),
                        quals: first.quals.clone(),
                        targets: Vec::new(),
                    });
                    for (f, t) in second.edges {
                        merged.push_edge(f, t);
                    }
                    for q in second.quals {
                        if !merged.quals.contains(&q) {
                            merged.quals.push(q);
                        }
                    }
                    for t in second.targets {
                        if !merged.targets.contains(&t) {
                            merged.targets.push(t);
                        }
                    }
                }
            }
            combined.filter(|c| !c.targets.is_empty())
        }
        // Case (4): all paths from the context, then p1 at every node.
        Path::Descendant(p1) => {
            let reach = graph.descendants_or_self(node);
            let mut img = ImageGraph::single(node);
            img.targets.clear();
            // Paths leading to every reachable node.
            for &x in &reach {
                for c in graph.children_of(x) {
                    if reach.contains(&c) {
                        img.push_edge(x, c);
                    }
                }
            }
            let mut any = false;
            for &b in &reach {
                if let Some(sub) = image(graph, p1, b) {
                    any = true;
                    for (f, t) in sub.edges {
                        img.push_edge(f, t);
                    }
                    for q in sub.quals {
                        if !img.quals.contains(&q) {
                            img.quals.push(q);
                        }
                    }
                    for t in sub.targets {
                        if !img.targets.contains(&t) {
                            img.targets.push(t);
                        }
                    }
                }
            }
            (any && !img.targets.is_empty()).then_some(img)
        }
        // Case (5): merge by node identity — this is the paper's merge and
        // can over-approximate the path set, which is why the *sound*
        // containment test ([`branches`]) never feeds unions here; merged
        // images are still used inside qualifiers, where the simulation
        // direction keeps them conservative.
        Path::Union(p1, p2) => {
            let i1 = image(graph, p1, node);
            let i2 = image(graph, p2, node);
            match (i1, i2) {
                (None, i) | (i, None) => i,
                (Some(mut a), Some(b)) => {
                    for (f, t) in b.edges {
                        a.push_edge(f, t);
                    }
                    for q in b.quals {
                        if !a.quals.contains(&q) {
                            a.quals.push(q);
                        }
                    }
                    for t in b.targets {
                        if !a.targets.contains(&t) {
                            a.targets.push(t);
                        }
                    }
                    Some(a)
                }
            }
        }
        // Case (6): attach the qualifier image at each target of the base.
        Path::Filter(base, q) => {
            let mut img = image(graph, base, node)?;
            let targets = img.targets.clone();
            for &t in &targets {
                for qi in qual_images(graph, q, t)? {
                    if !img.quals.contains(&(t, qi.clone())) {
                        img.quals.push((t, qi));
                    }
                }
            }
            Some(img)
        }
    }
}

/// Images of a qualifier at a node: a conjunction list (cases 7–8).
/// `None` = the qualifier is unsatisfiable at this node (empty image of a
/// required path).
pub fn qual_images(graph: &ViewGraph, q: &Qualifier, node: usize) -> Option<Vec<QualImage>> {
    match q {
        Qualifier::True => Some(Vec::new()),
        Qualifier::False => None,
        Qualifier::Path(p) if contains_closure(p) => opaque(q, node),
        Qualifier::Eq(p, _) if contains_closure(p) => opaque(q, node),
        Qualifier::Path(p) => {
            // Union inside a qualifier: merge branch images (the
            // conservative direction for qualifier usage is handled in the
            // simulation, which only matches structurally equal or
            // simulated qualifier graphs).
            let img = merged_image(graph, p, node)?;
            Some(vec![QualImage { eq_const: None, graph: img }])
        }
        Qualifier::Eq(p, c) => {
            let img = merged_image(graph, p, node)?;
            Some(vec![QualImage { eq_const: Some(c.clone()), graph: img }])
        }
        Qualifier::And(a, b) => {
            let mut out = qual_images(graph, a, node)?;
            out.extend(qual_images(graph, b, node)?);
            Some(out)
        }
        // Outside the conjunctive fragment (or DTD-invisible): opaque
        // marker compared by equality only.
        Qualifier::Or(..) | Qualifier::Not(_) | Qualifier::Attr(_) | Qualifier::AttrEq(..) => {
            opaque(q, node)
        }
    }
}

/// Opaque qualifier marker: compared by syntactic equality only.
/// Closure-bearing qualifier paths take this route too — a `None`
/// (unsatisfiable) image would be unsound for them, since `ε ∈ (p)*`
/// makes a closure qualifier satisfiable wherever its context exists.
fn opaque(q: &Qualifier, node: usize) -> Option<Vec<QualImage>> {
    Some(vec![QualImage {
        eq_const: Some(format!("⟨opaque:{q}⟩")),
        graph: ImageGraph::single(node),
    }])
}

/// Does the path contain a Kleene closure anywhere (including nested
/// qualifiers)?
fn contains_closure(p: &Path) -> bool {
    match p {
        Path::Closure(_) => true,
        Path::Step(a, b) | Path::Union(a, b) => contains_closure(a) || contains_closure(b),
        Path::Descendant(i) => contains_closure(i),
        Path::Filter(base, q) => contains_closure(base) || qual_contains_closure(q),
        _ => false,
    }
}

fn qual_contains_closure(q: &Qualifier) -> bool {
    match q {
        Qualifier::Path(p) | Qualifier::Eq(p, _) => contains_closure(p),
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qual_contains_closure(a) || qual_contains_closure(b)
        }
        Qualifier::Not(i) => qual_contains_closure(i),
        _ => false,
    }
}

/// Image over the full query including unions (merged by node identity).
fn merged_image(graph: &ViewGraph, p: &Path, node: usize) -> Option<ImageGraph> {
    image(graph, p, node)
}

#[cfg(test)]
trait QualifierOf {
    fn qualifier(&self) -> Qualifier;
}

#[cfg(test)]
impl QualifierOf for Path {
    fn qualifier(&self) -> Qualifier {
        match self {
            Path::Filter(_, q) => (**q).clone(),
            _ => panic!("expected a filter"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rewrite::ViewGraph;
    use sxv_dtd::parse_dtd;
    use sxv_xpath::parse;

    /// Fig. 9(a)'s DTD: a → b, c; b → d; c → d; d → e, f; e → g; f → g.
    fn fig9_graph() -> ViewGraph {
        let dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (d)>\
             <!ELEMENT d (e, f)><!ELEMENT e (g)><!ELEMENT f (g)><!ELEMENT g EMPTY>",
            "a",
        )
        .unwrap();
        ViewGraph::from_dtd(&dtd)
    }

    fn node(g: &ViewGraph, name: &str) -> usize {
        g.node_by_label(name).unwrap()
    }

    #[test]
    fn label_image() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse("b").unwrap(), a).unwrap();
        assert_eq!(img.edges, vec![(a, node(&g, "b"))]);
        assert_eq!(img.targets, vec![node(&g, "b")]);
        assert!(image(&g, &parse("zzz").unwrap(), a).is_none());
    }

    #[test]
    fn wildcard_image_covers_children() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse("*").unwrap(), a).unwrap();
        assert_eq!(img.targets.len(), 2);
    }

    #[test]
    fn step_image_composes() {
        // Example 5.2: p1 = a-context */d/*/g over Fig. 9(a).
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse("*/d/*/g").unwrap(), a).unwrap();
        // The whole DTD below a is covered (Fig. 9(a) itself).
        assert_eq!(img.targets, vec![node(&g, "g")]);
        assert!(img.edges.contains(&(node(&g, "b"), node(&g, "d"))));
        assert!(img.edges.contains(&(node(&g, "c"), node(&g, "d"))));
        assert!(img.edges.contains(&(node(&g, "e"), node(&g, "g"))));
        assert!(img.edges.contains(&(node(&g, "f"), node(&g, "g"))));
    }

    #[test]
    fn qualifier_attaches_at_context() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse(".[b]/c").unwrap(), a).unwrap();
        assert_eq!(img.quals.len(), 1);
        assert_eq!(img.quals[0].0, a);
        assert!(img.quals[0].1.eq_const.is_none());
    }

    #[test]
    fn eq_qualifier_carries_constant() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse(".[b='1']").unwrap(), a).unwrap();
        assert_eq!(img.quals[0].1.eq_const.as_deref(), Some("1"));
    }

    #[test]
    fn descendant_image_covers_reachable_subgraph() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let img = image(&g, &parse("//g").unwrap(), a).unwrap();
        assert_eq!(img.targets, vec![node(&g, "g")]);
        assert!(img.size() >= 8, "all paths included");
    }

    #[test]
    fn branches_distribute_unions() {
        let p = parse("(a | b)/c").unwrap();
        let bs = branches(&p).unwrap();
        assert_eq!(bs.len(), 2);
        assert_eq!(bs[0].to_string(), "a/c");
        assert_eq!(bs[1].to_string(), "b/c");
        let nested = parse("(a | b)/(c | d)").unwrap();
        assert_eq!(branches(&nested).unwrap().len(), 4);
    }

    #[test]
    fn branch_cap_respected() {
        // 2^7 = 128 > 64 branches.
        let mut q = String::from("(a | b)");
        for _ in 0..6 {
            q.push_str("/(a | b)");
        }
        let p = parse(&q).unwrap();
        assert!(branches(&p).is_none());
    }

    #[test]
    fn opaque_qualifiers_marked() {
        let g = fig9_graph();
        let a = node(&g, "a");
        let qi = qual_images(&g, &parse(".[not(b)]").unwrap().qualifier(), a).unwrap();
        assert!(qi[0].eq_const.as_deref().unwrap().starts_with("⟨opaque:"));
    }
}

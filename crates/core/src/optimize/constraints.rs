//! Qualifier evaluation against DTD structural constraints — §5.1,
//! Example 5.1 and cases (7)–(8).
//!
//! Three families of constraints are read off the productions of the
//! document DTD:
//!
//! * **co-existence** — in `A → B1, …, Bn` every `Bi` child exists, so a
//!   qualifier `[Bi]` (or `[Bi ∧ Bj]`) is *true* at `A`;
//! * **exclusiveness** — in `A → B1 + … + Bn` exactly one alternative
//!   exists, so `[Bi ∧ Bj]` (i ≠ j) is *false* at `A`;
//! * **non-existence** — a label that is not a child type of `A` makes
//!   `[l]` *false* at `A`.
//!
//! [`Certainty`] generalizes these to arbitrary paths: `cert(p, A)` says
//! whether `v⟦p⟧` is non-empty in *every* instance (`Always`), in *no*
//! instance (`Never`), or unknown (`Maybe`). [`QualEval::evaluate`] then rewrites a
//! qualifier to an equivalent simplified one, using the certainty analysis
//! plus containment-based conjunct elimination (`[q1 ∧ q2] → [q1]` when
//! `q1 ⟹ q2`, tested with the Prop. 5.1 simulation).

use crate::optimize::image::{branches, image, qual_images};
use crate::optimize::simulate::simulated_by;
use crate::rewrite::ViewGraph;
use std::collections::BTreeSet;
use sxv_dtd::{Dtd, NormalContent};
use sxv_xpath::{Path, Qualifier};

/// Three-valued certainty of `[p]` at a DTD node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certainty {
    /// Non-empty in every instance.
    Always,
    /// Empty in every instance.
    Never,
    /// Depends on the instance.
    Maybe,
}

/// Evaluation context: the DTD graph plus production lookups.
pub struct QualEval<'a> {
    /// The DTD graph queries are "evaluated" over.
    pub graph: &'a ViewGraph,
    /// Production lookups for the constraint analysis.
    pub dtd: &'a Dtd,
}

impl<'a> QualEval<'a> {
    /// The production connective at a graph node (None at the virtual
    /// document node).
    fn production(&self, node: usize) -> Option<&NormalContent> {
        let label = self.graph.label_of(node);
        if label.is_empty() {
            None
        } else {
            self.dtd.production(label)
        }
    }

    /// `cert(p, node)` plus the set of reachable nodes.
    pub fn certainty(&self, p: &Path, node: usize) -> (Certainty, BTreeSet<usize>) {
        match p {
            Path::Empty => (Certainty::Always, BTreeSet::from([node])),
            Path::EmptySet => (Certainty::Never, BTreeSet::new()),
            Path::Doc => (Certainty::Always, BTreeSet::from([self.graph.doc_node()])),
            Path::Label(l) => {
                let targets: BTreeSet<usize> =
                    self.graph.children_of(node).filter(|&c| self.graph.label_of(c) == l).collect();
                if targets.is_empty() {
                    // Non-existence constraint.
                    return (Certainty::Never, targets);
                }
                let cert = match self.production(node) {
                    // Co-existence: every listed child exists.
                    Some(NormalContent::Seq(items)) if items.iter().any(|b| b == l) => {
                        Certainty::Always
                    }
                    // Document node: the root always exists.
                    None => Certainty::Always,
                    _ => Certainty::Maybe,
                };
                (cert, targets)
            }
            // text(): possibly non-empty at str-production nodes (PCDATA
            // admits zero text children, so never Always); it reaches no
            // *element* node, hence the empty reach set.
            Path::Text => {
                let cert =
                    if self.graph.has_text(node) { Certainty::Maybe } else { Certainty::Never };
                (cert, BTreeSet::new())
            }
            Path::Wildcard => {
                let targets: BTreeSet<usize> = self.graph.children_of(node).collect();
                if targets.is_empty() {
                    return (Certainty::Never, targets);
                }
                // Case (7): concatenation or disjunction always has a
                // child; a star may be empty.
                let cert = match self.production(node) {
                    Some(NormalContent::Seq(_)) | Some(NormalContent::Choice(_)) | None => {
                        Certainty::Always
                    }
                    _ => Certainty::Maybe,
                };
                (cert, targets)
            }
            Path::Step(p1, p2) => {
                let (c1, reach1) = self.certainty(p1, node);
                if c1 == Certainty::Never {
                    return (Certainty::Never, BTreeSet::new());
                }
                let mut targets = BTreeSet::new();
                let mut all_always = true;
                let mut all_never = true;
                for &b in &reach1 {
                    let (c2, reach2) = self.certainty(p2, b);
                    targets.extend(reach2);
                    match c2 {
                        Certainty::Always => all_never = false,
                        Certainty::Never => all_always = false,
                        Certainty::Maybe => {
                            all_always = false;
                            all_never = false;
                        }
                    }
                }
                let cert = if reach1.is_empty() {
                    // p1 only reached text (its element reach is empty but
                    // its certainty is not Never): the continuation cannot
                    // be analyzed element-wise — stay conservative.
                    Certainty::Maybe
                } else if all_never {
                    Certainty::Never
                } else if c1 == Certainty::Always && all_always {
                    Certainty::Always
                } else {
                    Certainty::Maybe
                };
                (cert, targets)
            }
            Path::Descendant(p1) => {
                let reach = self.graph.descendants_or_self(node);
                let mut targets = BTreeSet::new();
                let mut any_possible = false;
                // `//p1` includes p1 at the context itself, which gives the
                // only cheap Always case.
                let (self_cert, _) = self.certainty(p1, node);
                for &b in &reach {
                    let (c, r) = self.certainty(p1, b);
                    targets.extend(r);
                    if c != Certainty::Never {
                        any_possible = true;
                    }
                }
                let cert = if !any_possible {
                    Certainty::Never
                } else if self_cert == Certainty::Always {
                    Certainty::Always
                } else {
                    Certainty::Maybe
                };
                (cert, targets)
            }
            Path::Closure(inner) => {
                // ε ∈ (p)*: the context node itself is always in the
                // answer, so a closure qualifier can never be empty.
                // Reach is the fixpoint of inner-steps from the context
                // (terminates: monotone over the finite node set — safe
                // on cyclic graphs).
                let mut targets = BTreeSet::from([node]);
                loop {
                    let mut next = targets.clone();
                    for &b in &targets {
                        let (_, r) = self.certainty(inner, b);
                        next.extend(r);
                    }
                    if next == targets {
                        return (Certainty::Always, targets);
                    }
                    targets = next;
                }
            }
            Path::Union(p1, p2) => {
                let (c1, r1) = self.certainty(p1, node);
                let (c2, r2) = self.certainty(p2, node);
                let mut targets = r1;
                targets.extend(r2);
                let cert = match (c1, c2) {
                    (Certainty::Always, _) | (_, Certainty::Always) => Certainty::Always,
                    (Certainty::Never, Certainty::Never) => Certainty::Never,
                    _ => Certainty::Maybe,
                };
                (cert, targets)
            }
            Path::Filter(base, q) => {
                let (cb, reachb) = self.certainty(base, node);
                if cb == Certainty::Never {
                    return (Certainty::Never, BTreeSet::new());
                }
                let mut all_true = true;
                let mut all_false = true;
                for &b in &reachb {
                    match self.truth(q, b) {
                        Some(true) => all_false = false,
                        Some(false) => all_true = false,
                        None => {
                            all_true = false;
                            all_false = false;
                        }
                    }
                }
                if all_false {
                    (Certainty::Never, BTreeSet::new())
                } else if cb == Certainty::Always && all_true {
                    (Certainty::Always, reachb)
                } else {
                    (Certainty::Maybe, reachb)
                }
            }
        }
    }

    /// `bool([q], node)` — `Some(b)` when the DTD forces the truth value.
    pub fn truth(&self, q: &Qualifier, node: usize) -> Option<bool> {
        match q {
            Qualifier::True => Some(true),
            Qualifier::False => Some(false),
            Qualifier::Path(p) => match self.certainty(p, node).0 {
                Certainty::Always => Some(true),
                Certainty::Never => Some(false),
                Certainty::Maybe => None,
            },
            // Content equality can never be forced true by the DTD, only
            // forced false by non-existence.
            Qualifier::Eq(p, _) => match self.certainty(p, node).0 {
                Certainty::Never => Some(false),
                _ => None,
            },
            // Attributes are invisible to the DTD model.
            Qualifier::Attr(_) | Qualifier::AttrEq(..) => None,
            Qualifier::And(a, b) => {
                match (self.truth(a, node), self.truth(b, node)) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), tb) => tb,
                    (ta, Some(true)) => ta,
                    _ => {
                        // Exclusive constraint (Example 5.1, case 8): two
                        // conjuncts demanding distinct alternatives of a
                        // disjunctive production cannot both hold.
                        if self.exclusive_conflict(a, b, node) {
                            Some(false)
                        } else {
                            None
                        }
                    }
                }
            }
            Qualifier::Or(a, b) => match (self.truth(a, node), self.truth(b, node)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), tb) => tb,
                (ta, Some(false)) => ta,
                _ => None,
            },
            Qualifier::Not(inner) => self.truth(inner, node).map(|b| !b),
        }
    }

    /// Do `a` and `b` require distinct alternatives of a disjunction?
    fn exclusive_conflict(&self, a: &Qualifier, b: &Qualifier, node: usize) -> bool {
        let Some(NormalContent::Choice(alts)) = self.production(node) else {
            return false;
        };
        let ra = self.required_first_labels(a);
        let rb = self.required_first_labels(b);
        for la in &ra {
            for lb in &rb {
                if la != lb && alts.contains(la) && alts.contains(lb) {
                    return true;
                }
            }
        }
        false
    }

    /// Child labels whose existence directly under the context is required
    /// by `q` (first steps of required paths).
    fn required_first_labels(&self, q: &Qualifier) -> BTreeSet<String> {
        fn first_label(p: &Path) -> Option<String> {
            match p {
                Path::Label(l) => Some(l.clone()),
                Path::Step(p1, _) => first_label(p1),
                Path::Filter(base, _) => first_label(base),
                _ => None,
            }
        }
        match q {
            Qualifier::Path(p) | Qualifier::Eq(p, _) => first_label(p).into_iter().collect(),
            Qualifier::And(a, b) => {
                let mut out = self.required_first_labels(a);
                out.extend(self.required_first_labels(b));
                out
            }
            _ => BTreeSet::new(),
        }
    }

    /// `evaluate([q], node)` — rewrite a qualifier to an equivalent,
    /// simplified one (`opt([q], A)` of §5.1).
    pub fn evaluate(&self, q: &Qualifier, node: usize) -> Qualifier {
        if let Some(b) = self.truth(q, node) {
            return if b { Qualifier::True } else { Qualifier::False };
        }
        match q {
            Qualifier::And(a, b) => {
                let ea = self.evaluate(a, node);
                let eb = self.evaluate(b, node);
                // Containment-based elimination: q1 ⟹ q2 ⟹ keep q1.
                if self.qual_implies(&ea, &eb, node) {
                    return ea;
                }
                if self.qual_implies(&eb, &ea, node) {
                    return eb;
                }
                Qualifier::and(ea, eb)
            }
            Qualifier::Or(a, b) => {
                let ea = self.evaluate(a, node);
                let eb = self.evaluate(b, node);
                if self.qual_implies(&ea, &eb, node) {
                    return eb;
                }
                if self.qual_implies(&eb, &ea, node) {
                    return ea;
                }
                Qualifier::or(ea, eb)
            }
            Qualifier::Not(inner) => Qualifier::not(self.evaluate(inner, node)),
            other => other.clone(),
        }
    }

    /// Sound implication check between qualifiers at a node, via the
    /// Prop. 5.1 simulation on their images.
    pub fn qual_implies(&self, a: &Qualifier, b: &Qualifier, node: usize) -> bool {
        if a == &Qualifier::False || b == &Qualifier::True {
            return true;
        }
        // Prop. 5.1 assumes a DAG: on a cyclic graph, per-label image
        // nodes conflate occurrences at different depths (e.g. both
        // `part`s of `part/subpart/part`), so a simulation can certify
        // implications that fail on real instances. Decline instead.
        if self.graph.is_cyclic() {
            return a == b;
        }
        let (Some(ia), Some(ib)) =
            (qual_images(self.graph, a, node), qual_images(self.graph, b, node))
        else {
            return false;
        };
        // Conjunction lists: a implies b iff every conjunct of b is
        // implied by some conjunct of a.
        ib.iter().all(|y| {
            ia.iter().any(|x| {
                let consts_ok = match (&y.eq_const, &x.eq_const) {
                    (None, _) => true,
                    (Some(cy), Some(cx)) => cy == cx,
                    (Some(_), None) => false,
                };
                consts_ok && simulated_by(&x.graph, &y.graph)
            })
        })
    }

    /// Sound containment test `p1 ⊆ p2` at `node` (∀ branch of p1
    /// ∃ branch of p2 with a simulation). Queries with `text()` steps have
    /// no DTD-node image and are never certified.
    pub fn contained_in(&self, p1: &Path, p2: &Path, node: usize) -> bool {
        if contains_text(p1) || contains_text(p2) {
            return p1 == p2;
        }
        // Cyclic graphs are outside Prop. 5.1's DAG setting: the image
        // construction identifies every occurrence of a label, so e.g.
        // `assembly/part/partno ⊆ assembly/part/subpart/part/partno`
        // would be (wrongly) certified over a recursive BOM DTD and
        // union reduction would drop real answers. Syntactic equality
        // is the only containment certified here.
        if self.graph.is_cyclic() {
            return p1 == p2;
        }
        let (Some(b1), Some(b2)) = (branches(p1), branches(p2)) else {
            return false;
        };
        b1.iter().all(|x| {
            let ix = image(self.graph, x, node);
            match ix {
                // An empty branch is contained in anything.
                None => true,
                Some(ix) => b2.iter().any(|y| {
                    image(self.graph, y, node).map(|iy| simulated_by(&ix, &iy)).unwrap_or(false)
                }),
            }
        })
    }
}

/// Does the path contain a `text()` step anywhere (including qualifiers)?
fn contains_text(p: &Path) -> bool {
    match p {
        Path::Text => true,
        Path::Step(a, b) | Path::Union(a, b) => contains_text(a) || contains_text(b),
        Path::Descendant(i) | Path::Closure(i) => contains_text(i),
        Path::Filter(base, q) => contains_text(base) || qual_contains_text(q),
        _ => false,
    }
}

fn qual_contains_text(q: &Qualifier) -> bool {
    match q {
        Qualifier::Path(p) | Qualifier::Eq(p, _) => contains_text(p),
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qual_contains_text(a) || qual_contains_text(b)
        }
        Qualifier::Not(i) => qual_contains_text(i),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xpath::parse;

    fn ctx(src: &str, root: &str) -> (Dtd, ViewGraph) {
        let dtd = parse_dtd(src, root).unwrap();
        let graph = ViewGraph::from_dtd(&dtd);
        (dtd, graph)
    }

    fn qual(s: &str) -> Qualifier {
        match parse(&format!(".[{s}]")).unwrap() {
            Path::Filter(_, q) => *q,
            _ => unreachable!(),
        }
    }

    /// Example 5.1, first case: concatenation ⟹ [b ∧ c] is true at a.
    #[test]
    fn coexistence_constraint() {
        let (dtd, g) = ctx("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert_eq!(e.truth(&qual("b and c"), a), Some(true));
        assert_eq!(e.evaluate(&qual("b and c"), a), Qualifier::True);
    }

    /// Example 5.1, second case: disjunction ⟹ [b ∧ c] is false at a.
    #[test]
    fn exclusive_constraint() {
        let (dtd, g) = ctx("<!ELEMENT a (b | c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert_eq!(e.truth(&qual("b and c"), a), Some(false));
        // Single alternatives stay unknown.
        assert_eq!(e.truth(&qual("b"), a), None);
    }

    /// Example 5.1, third case: non-existence ⟹ [c] is false at b.
    #[test]
    fn nonexistence_constraint() {
        let (dtd, g) =
            ctx("<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (#PCDATA)><!ELEMENT d EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let b = g.node_by_label("b").unwrap();
        assert_eq!(e.truth(&qual("c"), b), Some(false));
        assert_eq!(e.truth(&qual("d"), b), Some(true));
    }

    #[test]
    fn certainty_through_paths() {
        let (dtd, g) =
            ctx("<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (d*)><!ELEMENT d (#PCDATA)>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert_eq!(e.certainty(&parse("b/d").unwrap(), a).0, Certainty::Always);
        assert_eq!(e.certainty(&parse("c/d").unwrap(), a).0, Certainty::Maybe);
        assert_eq!(e.certainty(&parse("b/zzz").unwrap(), a).0, Certainty::Never);
        assert_eq!(e.certainty(&parse("b/d | c/zzz").unwrap(), a).0, Certainty::Always);
        assert_eq!(e.certainty(&parse("//d").unwrap(), a).0, Certainty::Maybe);
        assert_eq!(e.certainty(&parse("//b").unwrap(), a).0, Certainty::Always);
    }

    #[test]
    fn wildcard_certainty_by_connective() {
        let (dtd, g) = ctx(
            "<!ELEMENT a (b | c)><!ELEMENT b (d*)><!ELEMENT c (#PCDATA)><!ELEMENT d EMPTY>",
            "a",
        );
        let e = QualEval { graph: &g, dtd: &dtd };
        assert_eq!(
            e.certainty(&parse("*").unwrap(), g.node_by_label("a").unwrap()).0,
            Certainty::Always,
            "disjunction always has one child"
        );
        assert_eq!(
            e.certainty(&parse("*").unwrap(), g.node_by_label("b").unwrap()).0,
            Certainty::Maybe,
            "star may be empty"
        );
        assert_eq!(
            e.certainty(&parse("*").unwrap(), g.node_by_label("c").unwrap()).0,
            Certainty::Never,
            "text content has no element children"
        );
    }

    #[test]
    fn eq_never_forced_true() {
        let (dtd, g) = ctx("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert_eq!(e.truth(&qual("b='x'"), a), None);
        assert_eq!(e.truth(&qual("zzz='x'"), a), Some(false));
    }

    #[test]
    fn boolean_folding() {
        let (dtd, g) = ctx("<!ELEMENT a (b, c)><!ELEMENT b EMPTY><!ELEMENT c EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert_eq!(e.truth(&qual("b or zzz"), a), Some(true));
        assert_eq!(e.truth(&qual("zzz or yyy"), a), Some(false));
        assert_eq!(e.truth(&qual("not(zzz)"), a), Some(true));
        assert_eq!(e.truth(&qual("not(b)"), a), Some(false));
        // Partial knowledge simplifies.
        let (dtd2, g2) = ctx("<!ELEMENT a (b*)><!ELEMENT b EMPTY>", "a");
        let e2 = QualEval { graph: &g2, dtd: &dtd2 };
        let a2 = g2.node_by_label("a").unwrap();
        assert_eq!(e2.truth(&qual("b"), a2), None);
        assert_eq!(e2.evaluate(&qual("b and not(zzz)"), a2), qual("b"));
    }

    #[test]
    fn and_containment_elimination() {
        // [b/d ∧ b]: b/d implies b (prefix containment? no — result sets
        // differ; implication is about non-emptiness: [b/d] ⟹ [b]).
        let (dtd, g) = ctx("<!ELEMENT a (b*)><!ELEMENT b (d*)><!ELEMENT d EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        // As qualifier graphs: [b/d] has targets {d}, [b] has {b}; the
        // flipped simulation requires image(b/d) ⊑ image(b) which fails on
        // targets — so the conservative test keeps both. Equal conjuncts
        // do get folded by the smart constructor:
        assert_eq!(e.evaluate(&qual("b and b"), a), qual("b"));
        // And subsumed unions inside one conjunct simplify via truth:
        assert_eq!(e.evaluate(&qual("b and zzz"), a), Qualifier::False);
    }

    #[test]
    fn path_containment_test() {
        let (dtd, g) =
            ctx("<!ELEMENT a (b, c)><!ELEMENT b (d)><!ELEMENT c (d)><!ELEMENT d EMPTY>", "a");
        let e = QualEval { graph: &g, dtd: &dtd };
        let a = g.node_by_label("a").unwrap();
        assert!(e.contained_in(&parse("b/d").unwrap(), &parse("*/d").unwrap(), a));
        assert!(!e.contained_in(&parse("*/d").unwrap(), &parse("b/d").unwrap(), a));
        assert!(e.contained_in(&parse("b/d | c/d").unwrap(), &parse("*/d").unwrap(), a));
        assert!(e.contained_in(&parse("b").unwrap(), &parse("b").unwrap(), a));
        assert!(!e.contained_in(&parse("b").unwrap(), &parse("c").unwrap(), a));
    }

    #[test]
    fn spurious_cross_product_rejected() {
        // The soundness fix: a/x/d must NOT be contained in
        // a/x/b ∪ c/x/d even though the paper's merged image would say so.
        let (dtd, g) = ctx(
            "<!ELEMENT r (a, c)><!ELEMENT a (x)><!ELEMENT c (x)>\
             <!ELEMENT x (b, d)><!ELEMENT b EMPTY><!ELEMENT d EMPTY>",
            "r",
        );
        let e = QualEval { graph: &g, dtd: &dtd };
        let r = g.node_by_label("r").unwrap();
        assert!(!e.contained_in(&parse("a/x/d").unwrap(), &parse("a/x/b | c/x/d").unwrap(), r));
        assert!(e.contained_in(&parse("a/x/d").unwrap(), &parse("a/x/d | c/x/d").unwrap(), r));
    }
}

//! Error type for the security-view machinery.

use std::fmt;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A specification annotation refers to an edge `(A, B)` that does not
    /// exist in the document DTD.
    UnknownEdge {
        /// Parent element type of the annotated edge.
        parent: String,
        /// Child element type (or `@attribute`) of the annotated edge.
        child: String,
    },
    /// A specification qualifier still contains an unbound `$parameter`
    /// when it is needed for evaluation.
    UnboundParameter(String),
    /// A specification file could not be parsed.
    SpecParse {
        /// 1-based line number of the offending specification line.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// View materialization aborted (§3.3 semantics): the extracted data
    /// did not fit the view DTD production.
    MaterializeAbort {
        /// Rendering of the view node being expanded.
        node: String,
        /// Which §3.3 case failed and how.
        message: String,
    },
    /// No sound and complete security view exists for the specification
    /// (Theorem 3.2 is an if-and-only-if).
    NoView(String),
    /// The static view audit found a soundness/completeness violation
    /// (see [`crate::analysis::audit_view`]).
    AuditFailed(String),
    /// A view-definition file could not be parsed.
    ViewParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What failed to parse.
        message: String,
    },
    /// The operation requires a non-recursive view DTD; call the
    /// `*_with_height` variant for recursive views (§4.2).
    RecursiveView,
    /// The view DTD cannot produce an instance within the given height,
    /// so unfolding (§4.2) is impossible.
    UnfoldImpossible {
        /// The height bound that admitted no instance.
        height: usize,
    },
    /// The query uses a feature the algorithm does not support (e.g. an
    /// absolute path inside a qualifier during rewriting).
    UnsupportedQuery(String),
    /// A batch worker thread died before reporting its queries' answers
    /// (the surviving workers' answers are unaffected).
    WorkerLost,
    /// Strict verification mode refused to execute a plan whose static
    /// certificate (see [`sxv_xpath::certify`]) reported errors.
    Uncertified {
        /// The user query whose plan failed certification.
        query: String,
        /// Semicolon-joined descriptions of the certificate's error findings.
        findings: String,
    },
    /// Wrapped DTD-layer error.
    Dtd(sxv_dtd::Error),
    /// Wrapped XPath-layer error.
    XPath(sxv_xpath::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownEdge { parent, child } => {
                write!(f, "annotation on unknown DTD edge ({parent}, {child})")
            }
            Error::UnboundParameter(name) => write!(f, "unbound specification parameter ${name}"),
            Error::SpecParse { line, message } => {
                write!(f, "specification parse error on line {line}: {message}")
            }
            Error::MaterializeAbort { node, message } => {
                write!(f, "view materialization aborted at {node}: {message}")
            }
            Error::NoView(why) => write!(f, "no sound and complete security view exists: {why}"),
            Error::AuditFailed(findings) => {
                write!(f, "view audit failed: {findings}")
            }
            Error::ViewParse { line, message } => {
                write!(f, "view definition parse error on line {line}: {message}")
            }
            Error::RecursiveView => {
                write!(f, "operation requires a non-recursive view DTD (use the unfolding variant)")
            }
            Error::UnfoldImpossible { height } => {
                write!(f, "view DTD has no instance of height ≤ {height}; cannot unfold")
            }
            Error::UnsupportedQuery(what) => write!(f, "unsupported query feature: {what}"),
            Error::WorkerLost => {
                write!(f, "a batch worker thread panicked before answering its queries")
            }
            Error::Uncertified { query, findings } => {
                write!(f, "plan for `{query}` failed static certification: {findings}")
            }
            Error::Dtd(e) => write!(f, "{e}"),
            Error::XPath(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dtd(e) => Some(e),
            Error::XPath(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sxv_dtd::Error> for Error {
    fn from(e: sxv_dtd::Error) -> Self {
        Error::Dtd(e)
    }
}

impl From<sxv_xpath::Error> for Error {
    fn from(e: sxv_xpath::Error) -> Self {
        Error::XPath(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(Error::UnknownEdge { parent: "a".into(), child: "b".into() }
            .to_string()
            .contains("(a, b)"));
        assert!(Error::UnboundParameter("wardNo".into()).to_string().contains("$wardNo"));
        assert!(Error::RecursiveView.to_string().contains("non-recursive"));
        assert!(Error::UnfoldImpossible { height: 3 }.to_string().contains("≤ 3"));
        assert!(Error::Uncertified { query: "//salary".into(), findings: "emits salary".into() }
            .to_string()
            .contains("failed static certification"));
    }

    #[test]
    fn from_wrapped_errors() {
        let d: Error = sxv_dtd::Error::MissingRoot("r".into()).into();
        assert!(matches!(d, Error::Dtd(_)));
        let x: Error = sxv_xpath::Error::Parse { offset: 0, message: "m".into() }.into();
        assert!(matches!(x, Error::XPath(_)));
    }
}

//! End-to-end secure query answering — the framework of Fig. 3.
//!
//! [`SecureEngine`] wires the pieces together for one access policy: a
//! view query comes in, is rewritten (and optionally optimized) against
//! the hidden σ annotations and the document DTD, and the translated query
//! is evaluated over the original document. The security view itself is
//! never materialized on this path.

use crate::error::Result;
use crate::naive::NaiveBaseline;
use crate::optimize::{optimize, optimize_with_height};
use crate::rewrite::{rewrite, rewrite_with_height};
use crate::spec::AccessSpec;
use crate::view::def::SecurityView;
use sxv_xml::{DocIndex, Document, NodeId};
use sxv_xpath::{eval_at_root, Path};

/// Query evaluation strategy (the three columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Element-level annotations, child→descendant widening (§6 baseline).
    Naive,
    /// DTD-based query rewriting (Fig. 6).
    Rewrite,
    /// Rewriting plus DTD-constraint optimization (Fig. 10).
    Optimize,
}

/// A query engine bound to one access policy.
pub struct SecureEngine<'a> {
    spec: &'a AccessSpec,
    view: &'a SecurityView,
}

impl<'a> SecureEngine<'a> {
    /// Bind a specification and its derived view.
    pub fn new(spec: &'a AccessSpec, view: &'a SecurityView) -> Self {
        SecureEngine { spec, view }
    }

    /// The view DTD text exposed to users of this policy.
    pub fn exposed_view_dtd(&self) -> String {
        self.view.view_dtd_to_string()
    }

    /// Translate a view query to a document query.
    ///
    /// `doc_height` is only consulted for recursive views (§4.2 unfolding).
    pub fn translate(&self, p: &Path, approach: Approach, doc_height: usize) -> Result<Path> {
        match approach {
            Approach::Naive => Ok(NaiveBaseline::rewrite(p)),
            Approach::Rewrite | Approach::Optimize => {
                let recursive = self.view.is_recursive();
                let rewritten = if recursive {
                    rewrite_with_height(self.view, p, doc_height)?
                } else {
                    rewrite(self.view, p)?
                };
                if approach == Approach::Optimize {
                    if sxv_dtd::DtdGraph::new(self.spec.dtd()).is_recursive() {
                        optimize_with_height(self.spec.dtd(), &rewritten, doc_height)
                    } else {
                        optimize(self.spec.dtd(), &rewritten)
                    }
                } else {
                    Ok(rewritten)
                }
            }
        }
    }

    /// Answer a view query over `doc` with the default strategy
    /// (rewrite + optimize). Returns document nodes the user may access.
    pub fn answer(&self, doc: &Document, p: &Path) -> Result<Vec<NodeId>> {
        self.answer_with(doc, p, Approach::Optimize)
    }

    /// Answer using a prepared structural index ([`DocIndex`]) for the
    /// final evaluation: `//label` steps of the translated query become
    /// interval lookups. The index must have been built for `doc`.
    pub fn answer_indexed(
        &self,
        doc: &Document,
        index: &DocIndex,
        p: &Path,
    ) -> Result<Vec<NodeId>> {
        let q = self.translate(p, Approach::Optimize, doc.height())?;
        Ok(sxv_xpath::eval_at_root_indexed(doc, index, &q))
    }

    /// Answer with an explicit strategy. For [`Approach::Naive`], the
    /// document is annotated on the fly — benchmarks should pre-annotate
    /// with [`NaiveBaseline::annotate`] and evaluate directly, as the
    /// paper's setup does.
    pub fn answer_with(&self, doc: &Document, p: &Path, approach: Approach) -> Result<Vec<NodeId>> {
        match approach {
            Approach::Naive => {
                let annotated = NaiveBaseline::annotate(self.spec, doc);
                let q = NaiveBaseline::rewrite(p);
                Ok(eval_at_root(&annotated, &q))
            }
            _ => {
                let q = self.translate(p, approach, doc.height())?;
                Ok(eval_at_root(doc, &q))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::parse;

    fn setup() -> (AccessSpec, SecurityView, Document) {
        let dtd = parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml(
            r#"<hospital><dept>
<clinicalTrial><patientInfo><patient><name>Ann</name><wardNo>6</wardNo>
<treatment><trial><bill>100</bill></trial></treatment></patient></patientInfo><test>t</test></clinicalTrial>
<patientInfo><patient><name>Bob</name><wardNo>6</wardNo>
<treatment><regular><bill>70</bill><medication>m</medication></regular></treatment></patient></patientInfo>
<staffInfo/></dept></hospital>"#,
        )
        .unwrap();
        (spec, view, doc)
    }

    #[test]
    fn all_approaches_agree_on_paper_queries() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//patient/name", "//bill", "dept/patientInfo/patient", "//name"] {
            let p = parse(q).unwrap();
            let rewrite_ans = engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
            let optimize_ans = engine.answer_with(&doc, &p, Approach::Optimize).unwrap();
            let naive_ans = engine.answer_with(&doc, &p, Approach::Naive).unwrap();
            assert_eq!(rewrite_ans, optimize_ans, "{q}");
            // Naive evaluates on an annotated *copy*: same arena layout, so
            // NodeIds are directly comparable.
            assert_eq!(rewrite_ans, naive_ans, "{q}");
        }
    }

    #[test]
    fn sensitive_data_unreachable() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//clinicalTrial", "//trial", "//test", "//regular"] {
            let ans = engine.answer(&doc, &parse(q).unwrap()).unwrap();
            assert!(ans.is_empty(), "{q} leaked {} nodes", ans.len());
        }
        // But the *content* the nurse may see under those regions flows.
        let bills = engine.answer(&doc, &parse("//bill").unwrap()).unwrap();
        assert_eq!(bills.len(), 2);
    }

    #[test]
    fn exposed_dtd_hides_sigma_and_labels() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let exposed = engine.exposed_view_dtd();
        assert!(exposed.contains("dept"));
        assert!(!exposed.contains("clinicalTrial"));
        assert!(!exposed.contains("wardNo='6'"), "σ qualifier must not leak");
    }

    #[test]
    fn indexed_answers_match() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).expect("parsed docs are in document order");
        for q in ["//patient/name", "//bill", "//clinicalTrial", "dept/*"] {
            let p = parse(q).unwrap();
            assert_eq!(
                engine.answer(&doc, &p).unwrap(),
                engine.answer_indexed(&doc, &index, &p).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn default_answer_uses_optimize() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient").unwrap();
        assert_eq!(
            engine.answer(&doc, &p).unwrap(),
            engine.answer_with(&doc, &p, Approach::Optimize).unwrap()
        );
    }
}

//! End-to-end secure query answering — the framework of Fig. 3.
//!
//! [`SecureEngine`] wires the pieces together for one access policy: a
//! view query comes in, is rewritten (and optionally optimized) against
//! the hidden σ annotations and the document DTD, and the translated query
//! is evaluated over the original document. The security view itself is
//! never materialized on this path.

use crate::error::Result;
use crate::naive::NaiveBaseline;
use crate::optimize::{optimize, optimize_with_height};
use crate::rewrite::{rewrite, rewrite_with_height};
use crate::spec::AccessSpec;
use crate::view::def::SecurityView;
use std::collections::HashMap;
use std::sync::Mutex;
use sxv_xml::{DocIndex, Document, NodeId};
use sxv_xpath::{simplify, EvalStats, Path};

/// Query evaluation strategy (the three columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Element-level annotations, child→descendant widening (§6 baseline).
    Naive,
    /// DTD-based query rewriting (Fig. 6).
    Rewrite,
    /// Rewriting plus DTD-constraint optimization (Fig. 10).
    Optimize,
}

/// Default number of translated queries kept by the engine's cache.
pub const DEFAULT_TRANSLATION_CACHE_CAPACITY: usize = 64;

/// Key of one translation cache entry: the *normalized* view query (so
/// `a | a` and `a` share an entry), the strategy, and the unfolding
/// height — which is part of the translation's meaning only for
/// recursive views/DTDs and is normalized to 0 otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    query: Path,
    approach: Approach,
    height: usize,
}

/// Bounded LRU map of translated queries. Capacity is small and lookups
/// dominate, so eviction does a linear minimum scan over last-use ticks
/// instead of maintaining an intrusive list.
#[derive(Debug, Default)]
struct TranslationCache {
    cap: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    map: HashMap<CacheKey, (Result<Path>, u64)>,
}

impl TranslationCache {
    fn lookup(&mut self, key: &CacheKey) -> Option<Result<Path>> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some((p, t)) => {
                *t = self.tick;
                self.hits += 1;
                Some(p.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: CacheKey, translated: Result<Path>) {
        if self.cap == 0 {
            return;
        }
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, (_, t))| *t).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.tick += 1;
        self.map.insert(key, (translated, self.tick));
    }
}

/// Cumulative translation-cache counters, readable at any time via
/// [`SecureEngine::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Translations served from the cache.
    pub hits: u64,
    /// Translations computed (and inserted) on miss.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// Work report for one answered query: where the translation came from,
/// what it was, and the evaluator's machine-independent cost counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// The translated (document-side) query that was evaluated.
    pub translated: Path,
    /// The translation was served from the cache.
    pub cache_hit: bool,
    /// Evaluator work counters (`index_lookups` is non-zero only on the
    /// indexed path).
    pub eval: EvalStats,
}

/// A query engine bound to one access policy.
pub struct SecureEngine<'a> {
    spec: &'a AccessSpec,
    view: &'a SecurityView,
    /// `Mutex` for interior mutability: answering queries takes `&self`.
    cache: Mutex<TranslationCache>,
    /// The engine only needs the height for recursive unfoldings; cache
    /// keys normalize it to 0 otherwise so documents of different heights
    /// share entries.
    height_sensitive: bool,
}

impl<'a> SecureEngine<'a> {
    /// Bind a specification and its derived view.
    pub fn new(spec: &'a AccessSpec, view: &'a SecurityView) -> Self {
        Self::with_cache_capacity(spec, view, DEFAULT_TRANSLATION_CACHE_CAPACITY)
    }

    /// Bind with an explicit translation-cache capacity (0 disables).
    pub fn with_cache_capacity(
        spec: &'a AccessSpec,
        view: &'a SecurityView,
        capacity: usize,
    ) -> Self {
        let height_sensitive =
            view.is_recursive() || sxv_dtd::DtdGraph::new(spec.dtd()).is_recursive();
        SecureEngine {
            spec,
            view,
            cache: Mutex::new(TranslationCache { cap: capacity, ..TranslationCache::default() }),
            height_sensitive,
        }
    }

    /// The view DTD text exposed to users of this policy.
    pub fn exposed_view_dtd(&self) -> String {
        self.view.view_dtd_to_string()
    }

    /// Cumulative cache counters since the engine was built.
    pub fn cache_stats(&self) -> CacheStats {
        let c = self.cache.lock().unwrap();
        CacheStats { hits: c.hits, misses: c.misses, entries: c.map.len() }
    }

    /// Translate a view query to a document query.
    ///
    /// `doc_height` is only consulted for recursive views (§4.2 unfolding).
    /// Results are memoized in a bounded LRU keyed by the normalized
    /// query, the approach, and (for recursive views only) the height.
    pub fn translate(&self, p: &Path, approach: Approach, doc_height: usize) -> Result<Path> {
        let key = CacheKey {
            query: simplify(p),
            approach,
            height: if self.height_sensitive { doc_height } else { 0 },
        };
        if let Some(cached) = self.cache.lock().unwrap().lookup(&key) {
            return cached;
        }
        let translated = self.translate_uncached(&key.query, approach, doc_height);
        self.cache.lock().unwrap().insert(key, translated.clone());
        translated
    }

    fn translate_uncached(&self, p: &Path, approach: Approach, doc_height: usize) -> Result<Path> {
        match approach {
            Approach::Naive => Ok(NaiveBaseline::rewrite(p)),
            Approach::Rewrite | Approach::Optimize => {
                let recursive = self.view.is_recursive();
                let rewritten = if recursive {
                    rewrite_with_height(self.view, p, doc_height)?
                } else {
                    rewrite(self.view, p)?
                };
                if approach == Approach::Optimize {
                    if sxv_dtd::DtdGraph::new(self.spec.dtd()).is_recursive() {
                        optimize_with_height(self.spec.dtd(), &rewritten, doc_height)
                    } else {
                        optimize(self.spec.dtd(), &rewritten)
                    }
                } else {
                    Ok(rewritten)
                }
            }
        }
    }

    /// Answer a view query over `doc` with the default strategy
    /// (rewrite + optimize). Returns document nodes the user may access.
    pub fn answer(&self, doc: &Document, p: &Path) -> Result<Vec<NodeId>> {
        self.answer_with(doc, p, Approach::Optimize)
    }

    /// Answer using a prepared structural index ([`DocIndex`]) for the
    /// final evaluation: `//label` steps *and qualifier probes* of the
    /// translated query become interval lookups, and `[p = c]` string
    /// values come from the index's memoized text buffer. The index must
    /// have been built for `doc`.
    pub fn answer_indexed(
        &self,
        doc: &Document,
        index: &DocIndex,
        p: &Path,
    ) -> Result<Vec<NodeId>> {
        self.answer_report(doc, Some(index), p, Approach::Optimize).map(|(ans, _)| ans)
    }

    /// Answer with an explicit strategy. For [`Approach::Naive`], the
    /// document is annotated on the fly — benchmarks should pre-annotate
    /// with [`NaiveBaseline::annotate`] and evaluate directly, as the
    /// paper's setup does.
    pub fn answer_with(&self, doc: &Document, p: &Path, approach: Approach) -> Result<Vec<NodeId>> {
        self.answer_report(doc, None, p, approach).map(|(ans, _)| ans)
    }

    /// Answer and report the work done: the translated query, whether the
    /// translation was a cache hit, and evaluator counters. Passing an
    /// index enables the structural fast path end to end (axis steps,
    /// qualifier probes, string values). [`Approach::Naive`] evaluates
    /// over an on-the-fly annotated copy, so the given index (built for
    /// `doc`, not the copy) is ignored on that path.
    pub fn answer_report(
        &self,
        doc: &Document,
        index: Option<&DocIndex>,
        p: &Path,
        approach: Approach,
    ) -> Result<(Vec<NodeId>, QueryReport)> {
        let hits_before = self.cache.lock().unwrap().hits;
        let q = self.translate(p, approach, doc.height())?;
        let cache_hit = self.cache.lock().unwrap().hits > hits_before;
        let (answer, eval) = match (approach, index) {
            (Approach::Naive, _) => {
                let annotated = NaiveBaseline::annotate(self.spec, doc);
                sxv_xpath::eval_at_root_with_stats(&annotated, &q)
            }
            (_, Some(idx)) => sxv_xpath::eval_at_root_indexed_with_stats(doc, idx, &q),
            (_, None) => sxv_xpath::eval_at_root_with_stats(doc, &q),
        };
        Ok((answer, QueryReport { translated: q, cache_hit, eval }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::parse;

    fn setup() -> (AccessSpec, SecurityView, Document) {
        let dtd = parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml(
            r#"<hospital><dept>
<clinicalTrial><patientInfo><patient><name>Ann</name><wardNo>6</wardNo>
<treatment><trial><bill>100</bill></trial></treatment></patient></patientInfo><test>t</test></clinicalTrial>
<patientInfo><patient><name>Bob</name><wardNo>6</wardNo>
<treatment><regular><bill>70</bill><medication>m</medication></regular></treatment></patient></patientInfo>
<staffInfo/></dept></hospital>"#,
        )
        .unwrap();
        (spec, view, doc)
    }

    #[test]
    fn all_approaches_agree_on_paper_queries() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//patient/name", "//bill", "dept/patientInfo/patient", "//name"] {
            let p = parse(q).unwrap();
            let rewrite_ans = engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
            let optimize_ans = engine.answer_with(&doc, &p, Approach::Optimize).unwrap();
            let naive_ans = engine.answer_with(&doc, &p, Approach::Naive).unwrap();
            assert_eq!(rewrite_ans, optimize_ans, "{q}");
            // Naive evaluates on an annotated *copy*: same arena layout, so
            // NodeIds are directly comparable.
            assert_eq!(rewrite_ans, naive_ans, "{q}");
        }
    }

    #[test]
    fn sensitive_data_unreachable() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//clinicalTrial", "//trial", "//test", "//regular"] {
            let ans = engine.answer(&doc, &parse(q).unwrap()).unwrap();
            assert!(ans.is_empty(), "{q} leaked {} nodes", ans.len());
        }
        // But the *content* the nurse may see under those regions flows.
        let bills = engine.answer(&doc, &parse("//bill").unwrap()).unwrap();
        assert_eq!(bills.len(), 2);
    }

    #[test]
    fn exposed_dtd_hides_sigma_and_labels() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let exposed = engine.exposed_view_dtd();
        assert!(exposed.contains("dept"));
        assert!(!exposed.contains("clinicalTrial"));
        assert!(!exposed.contains("wardNo='6'"), "σ qualifier must not leak");
    }

    #[test]
    fn indexed_answers_match() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).expect("parsed docs are in document order");
        for q in ["//patient/name", "//bill", "//clinicalTrial", "dept/*"] {
            let p = parse(q).unwrap();
            assert_eq!(
                engine.answer(&doc, &p).unwrap(),
                engine.answer_indexed(&doc, &index, &p).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn translation_cache_hits_on_repeat_and_normalized_queries() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        let first = engine.answer(&doc, &p).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        let second = engine.answer(&doc, &p).unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // Normalization: an equivalent-after-simplification query shares
        // the entry instead of retranslating.
        let p2 = parse("//patient/name | //patient/name").unwrap();
        engine.answer(&doc, &p2).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));

        // Different approach = different entry.
        engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    }

    #[test]
    fn translation_cache_reports_hit_per_query() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//bill").unwrap();
        let (_, report) = engine.answer_report(&doc, None, &p, Approach::Optimize).unwrap();
        assert!(!report.cache_hit);
        let (_, report) = engine.answer_report(&doc, None, &p, Approach::Optimize).unwrap();
        assert!(report.cache_hit);
        assert_eq!(
            report.translated,
            engine.translate(&p, Approach::Optimize, doc.height()).unwrap()
        );
    }

    #[test]
    fn translation_cache_evicts_least_recently_used() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::with_cache_capacity(&spec, &view, 2);
        let a = parse("//bill").unwrap();
        let b = parse("//name").unwrap();
        let c = parse("//patient").unwrap();
        engine.translate(&a, Approach::Optimize, 0).unwrap();
        engine.translate(&b, Approach::Optimize, 0).unwrap();
        engine.translate(&a, Approach::Optimize, 0).unwrap(); // refresh a
        engine.translate(&c, Approach::Optimize, 0).unwrap(); // evicts b
        let before = engine.cache_stats();
        engine.translate(&a, Approach::Optimize, 0).unwrap(); // still cached
        assert_eq!(engine.cache_stats().hits, before.hits + 1);
        engine.translate(&b, Approach::Optimize, 0).unwrap(); // was evicted
        assert_eq!(engine.cache_stats().misses, before.misses + 1);
        assert!(engine.cache_stats().entries <= 2);
    }

    #[test]
    fn indexed_report_counts_index_work_and_agrees() {
        // Rewriting eliminates view-level `//` on non-recursive views, so
        // the structural index earns its keep inside *qualifiers*: use a σ
        // condition with a descendant probe so the translated query keeps
        // one, then check the indexed path does strictly less axis work.
        let (base, _, doc) = setup();
        let spec = AccessSpec::builder(base.dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "//wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        // `Rewrite` keeps σ qualifiers verbatim (`Optimize` may simplify
        // the descendant probe into child paths, leaving nothing for the
        // index to accelerate).
        for q in ["//patient[name='Bob']/name", "//patient/name", "//bill"] {
            let p = parse(q).unwrap();
            let (scan_ans, scan) = engine.answer_report(&doc, None, &p, Approach::Rewrite).unwrap();
            let (idx_ans, idx) =
                engine.answer_report(&doc, Some(&index), &p, Approach::Rewrite).unwrap();
            assert_eq!(scan_ans, idx_ans, "{q}");
            assert!(!scan_ans.is_empty(), "{q} should select something");
            assert_eq!(scan.eval.index_lookups, 0, "{q}");
            assert!(idx.eval.index_lookups > 0, "{q}: indexed path must probe the index");
            assert!(
                idx.eval.nodes_touched < scan.eval.nodes_touched,
                "{q}: indexed {} vs scan {}",
                idx.eval.nodes_touched,
                scan.eval.nodes_touched
            );
        }
    }

    #[test]
    fn default_answer_uses_optimize() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient").unwrap();
        assert_eq!(
            engine.answer(&doc, &p).unwrap(),
            engine.answer_with(&doc, &p, Approach::Optimize).unwrap()
        );
    }
}

//! End-to-end secure query answering — the framework of Fig. 3.
//!
//! [`SecureEngine`] wires the pieces together for one access policy: a
//! view query comes in, is rewritten (and optionally optimized) against
//! the hidden σ annotations and the document DTD, and the translated query
//! is evaluated over the original document. The security view itself is
//! never materialized on this path.

use crate::analysis::certify_context;
use crate::annotate::build_access_view;
use crate::error::{Error, Result};
use crate::naive::NaiveBaseline;
use crate::optimize::optimize;
use crate::plancost::{calibrate, dtd_cost_model};
use crate::rewrite::rewrite;
use crate::spec::AccessSpec;
use crate::view::def::SecurityView;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use sxv_xml::{DocId, DocIndex, Document, NodeId};
use sxv_xpath::{
    certify, compile, compile_annotate, simplify, AccessView, AxisTest, Backend, CertifyContext,
    CompiledQuery, CostModel, EvalStats, Path, PlanCertificate, PlanNode, PlanOp, PlanPolicy,
    PlanSummary,
};

/// Query evaluation strategy (the three columns of Table 1, plus the
/// accessibility-bitmap approach).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Element-level annotations, child→descendant widening (§6 baseline).
    Naive,
    /// DTD-based query rewriting (Fig. 6).
    Rewrite,
    /// Rewriting plus DTD-constraint optimization (Fig. 10).
    Optimize,
    /// Accessibility bitmaps: evaluate the view query directly over the
    /// document, filtering every step through a cached word-parallel
    /// [`AccessView`] artifact instead of rewriting the query.
    Annotate,
}

/// Default number of translated queries kept by the engine's cache.
pub const DEFAULT_TRANSLATION_CACHE_CAPACITY: usize = 64;

/// Key of one plan-cache entry: the *normalized* view query (so `a | a`
/// and `a` share an entry), the strategy, and the planner policy.
/// Deliberately document-free: recursive views translate to closure
/// plans (`(…)*`) instead of height-bounded unfoldings, so one entry
/// serves documents of every height.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    query: Path,
    approach: Approach,
    policy: PlanPolicy,
}

/// Most shards a translation cache will split into; small capacities use
/// fewer so per-shard LRU still approximates global LRU.
const MAX_CACHE_SHARDS: usize = 8;

/// Reacquire a read guard even if a previous holder panicked: the cache
/// only memoizes pure translation results, so a poisoned entry is never
/// half-written and recovery is always safe. A dead worker thread must
/// not take the whole serving path down with it.
fn read_recover<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock twin of [`read_recover`].
fn write_recover<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Runtime feedback slot shared by every clone of a cached plan: a
/// one-shot latch deciding which execution of an `Auto` plan runs
/// profiled (recording observed per-operator cardinalities). The
/// recompile decision happens inside that same call, so the latch is
/// the only cross-call state needed.
#[derive(Debug, Default)]
pub struct PlanFeedback {
    profiled: AtomicBool,
}

impl PlanFeedback {
    /// A feedback slot that is already latched — used for recompiled
    /// plans, which must not profile (and potentially recompile) again.
    fn latched() -> PlanFeedback {
        PlanFeedback { profiled: AtomicBool::new(true) }
    }
}

/// A compiled plan paired with the static certificate the engine
/// produced for it at compile time (see [`sxv_xpath::certify`]). Both
/// halves are `Arc`-shared, so cloning a `Planned` out of the cache is
/// a few refcount bumps.
#[derive(Debug, Clone)]
pub struct Planned {
    /// The compiled, executable plan.
    pub plan: Arc<CompiledQuery>,
    /// The plan's static certificate (checked once, cached alongside).
    pub cert: Arc<PlanCertificate>,
    /// Adaptive-execution feedback shared across cache clones.
    pub feedback: Arc<PlanFeedback>,
}

/// One cache shard: planning outcome plus its atomic LRU tick, per key.
/// The value is the whole compiled artifact — a hit skips parse
/// normalization, rewriting, optimization, planning *and*
/// certification.
type CacheShard = HashMap<CacheKey, (Result<Planned>, AtomicU64)>;

/// Sharded, read-mostly map of compiled query plans. Keys hash to one of
/// a few independently locked shards, so concurrent [`SecureEngine`]
/// readers (the `answer_batch` workers) do not serialize on one mutex:
/// a cache *hit* takes only a shard read lock — the LRU tick lives in an
/// `AtomicU64` per entry — and only misses take a shard write lock.
/// Eviction is per-shard LRU via a linear minimum scan (capacities are
/// small and lookups dominate).
#[derive(Debug)]
struct PlanCache {
    shards: Vec<RwLock<CacheShard>>,
    /// Per-shard entry budget; 0 disables caching entirely.
    shard_cap: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Plans compiled on the miss path — flat across repeats of a cached
    /// query, which is the observable proof of compile-once.
    plans_compiled: AtomicU64,
    /// Plans put through the static certifier (one per compile).
    plans_certified: AtomicU64,
    /// Adaptive recompiles: cached `Auto` plans replaced after observed
    /// cardinalities diverged from the static estimates (never counted
    /// in `plans_compiled`, which stays the compile-once proof).
    plans_recompiled: AtomicU64,
    /// Certificates with error findings (the plan would emit data that
    /// is not provably accessible; `--verify` refuses to serve these).
    certify_failures: AtomicU64,
    /// Cumulative certification time, in microseconds.
    certify_micros: AtomicU64,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        // One shard per ~8 entries of budget: capacity 64 → 8 shards;
        // tiny caches stay single-sharded so LRU order is exact.
        let shard_count = if capacity == 0 {
            1
        } else {
            (capacity / MAX_CACHE_SHARDS).clamp(1, MAX_CACHE_SHARDS)
        };
        PlanCache {
            shards: (0..shard_count).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_cap: capacity.div_ceil(shard_count),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            plans_compiled: AtomicU64::new(0),
            plans_certified: AtomicU64::new(0),
            plans_recompiled: AtomicU64::new(0),
            certify_failures: AtomicU64::new(0),
            certify_micros: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<CacheShard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    fn lookup(&self, key: &CacheKey) -> Option<Result<Planned>> {
        let shard = read_recover(self.shard(key));
        match shard.get(key) {
            Some((p, used)) => {
                used.store(self.tick.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(p.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: CacheKey, planned: Result<Planned>) {
        if self.shard_cap == 0 {
            return;
        }
        let mut shard = write_recover(self.shard(&key));
        if shard.len() >= self.shard_cap && !shard.contains_key(&key) {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, (_, t))| t.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                shard.remove(&oldest);
            }
        }
        let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        shard.insert(key, (planned, AtomicU64::new(now)));
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| read_recover(s).len()).sum(),
            plans_compiled: self.plans_compiled.load(Ordering::Relaxed),
            plans_certified: self.plans_certified.load(Ordering::Relaxed),
            plans_recompiled: self.plans_recompiled.load(Ordering::Relaxed),
            certify_failures: self.certify_failures.load(Ordering::Relaxed),
            certify_micros: self.certify_micros.load(Ordering::Relaxed),
        }
    }
}

/// Divergence ratio that triggers an adaptive recompile: an operator's
/// observed output must be ≥8x above (or below) its planned `est_rows`.
const ADAPT_RATIO: u64 = 8;

/// Magnitude floor for the divergence test: tiny absolute counts (a
/// 0-vs-8-row miss on a toy document) never earn a recompile — the
/// recompile would cost more than every future execution combined.
const ADAPT_MIN_ROWS: u64 = 64;

/// Observed per-label cardinalities harvested from a profiled
/// execution: descendant scans (fused or not) report how many
/// `label`-elements actually streamed out, which calibrates the cost
/// model's per-label table. Child steps are skipped — their counts are
/// context-local and would poison the global label statistics.
fn label_observations(ops: &[PlanNode], observed: &[u64]) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for (node, &obs) in ops.iter().zip(observed) {
        let axis = match &node.op {
            PlanOp::DescendantSlice(a) => Some(a),
            PlanOp::Fused(f) if f.filter.is_none() && f.qual.is_none() => Some(&f.axis),
            _ => None,
        };
        if let Some(AxisTest::Label(l)) = axis {
            out.push((l.clone(), obs));
        }
    }
    out
}

/// Most accessibility artifacts kept resident at once; an engine rarely
/// serves more than a handful of distinct documents.
const ACCESS_CACHE_CAPACITY: usize = 8;

/// Cached [`AccessView`] artifacts, one per served document, plus the
/// counters `sxv query --stats` reports. Documents are identified by
/// their stable [`DocId`] — a process-wide monotonic stamp that is never
/// reused — so a long-lived engine (e.g. the `sxv serve` daemon) can
/// watch documents come and go without ever serving one document's
/// accessibility bitmaps for another. (An earlier revision keyed by
/// `(address, len)`, which aliases as soon as a dropped document's
/// allocation is recycled for a same-length one — a security bug, not
/// just a stale-perf bug; see `access_cache_does_not_alias_replaced_documents`.)
#[derive(Debug, Default)]
struct AccessCache {
    map: RwLock<HashMap<DocId, Arc<AccessView>>>,
    builds: AtomicU64,
    hits: AtomicU64,
    build_micros: AtomicU64,
}

/// Cumulative accessibility-bitmap cache counters, readable at any time
/// via [`SecureEngine::access_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCacheStats {
    /// Artifacts built (a second query over the same document must show
    /// this flat — that is the observable proof of build-once).
    pub builds: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Total resident footprint of the cached artifacts, in bytes.
    pub bytes: usize,
    /// Cumulative build time across all builds, in microseconds.
    pub build_micros: u64,
}

/// Cumulative plan-cache counters, readable at any time via
/// [`SecureEngine::cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plans served from the cache.
    pub hits: u64,
    /// Plans compiled (and inserted) on miss.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Successful translate-and-plan compilations since the engine was
    /// built; stays flat while repeats hit the cache.
    pub plans_compiled: u64,
    /// Plans put through the static certifier (one per compile; flat on
    /// cache hits — the certificate is cached with the plan).
    pub plans_certified: u64,
    /// Adaptive recompiles of cached `Auto` plans after observed
    /// cardinalities diverged >8x from the static estimates.
    pub plans_recompiled: u64,
    /// Certificates with error findings. Under `--verify` these plans
    /// are refused; otherwise they still serve (runtime enforcement
    /// keeps the answer safe) and this counter is the audit trail.
    pub certify_failures: u64,
    /// Cumulative static-certification time in microseconds.
    pub certify_micros: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 before any lookup).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Work report for one answered query: where the plan came from, what
/// the translation was, the plan's operator mix with its estimated
/// cardinality, and the executor's machine-independent cost counters
/// (the actual work, to compare against the estimate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// The translated (document-side) query that was evaluated.
    pub translated: Path,
    /// The compiled plan was served from the cache.
    pub cache_hit: bool,
    /// Executor work counters (`index_lookups` is non-zero only on the
    /// indexed path).
    pub eval: EvalStats,
    /// Operator counts and planned result cardinality of the executed
    /// plan (compare `plan.est_rows` against the actual answer length).
    pub plan: PlanSummary,
    /// The planner policy the executed plan was compiled under.
    pub policy: PlanPolicy,
    /// The plan's static certificate has no error findings (see
    /// [`sxv_xpath::certify`]). Uncertified plans still serve safely —
    /// runtime enforcement is unchanged — unless the engine is in
    /// strict verify mode, which refuses them before execution.
    pub certified: bool,
}

/// A query engine bound to one access policy.
///
/// The engine is `Sync`: all interior mutability is the sharded
/// translation cache, so one engine can serve concurrent callers (see
/// [`SecureEngine::answer_batch`]) over a shared immutable
/// `Document` + [`DocIndex`].
pub struct SecureEngine<'a> {
    spec: &'a AccessSpec,
    view: &'a SecurityView,
    cache: PlanCache,
    /// Planner statistics derived once from the document DTD (expected
    /// per-label counts and fan-out); serving is assumed indexed, and
    /// plans degrade gracefully when a call arrives without an index.
    cost: CostModel,
    /// Accessibility artifacts for [`Approach::Annotate`], built once per
    /// served document and shared across queries and batch workers.
    access: AccessCache,
    /// Annotated document copies for [`Approach::Naive`], built once per
    /// served document so repeated naive queries measure query cost, not
    /// re-annotation (same `DocId` keying as the access cache).
    naive: RwLock<HashMap<DocId, Arc<Document>>>,
    /// Schema + accessibility context for the static plan certifier,
    /// built once from the specification and its view.
    certctx: CertifyContext,
    /// Strict verification: refuse to serve plans whose certificate has
    /// error findings instead of relying on runtime enforcement alone.
    verify: bool,
}

impl<'a> SecureEngine<'a> {
    /// Bind a specification and its derived view.
    pub fn new(spec: &'a AccessSpec, view: &'a SecurityView) -> Self {
        Self::with_cache_capacity(spec, view, DEFAULT_TRANSLATION_CACHE_CAPACITY)
    }

    /// Bind with an explicit translation-cache capacity (0 disables).
    pub fn with_cache_capacity(
        spec: &'a AccessSpec,
        view: &'a SecurityView,
        capacity: usize,
    ) -> Self {
        SecureEngine {
            spec,
            view,
            cache: PlanCache::new(capacity),
            cost: dtd_cost_model(spec.dtd(), true),
            access: AccessCache::default(),
            naive: RwLock::new(HashMap::new()),
            certctx: certify_context(spec, view),
            verify: false,
        }
    }

    /// Toggle strict verification: when on, answering refuses any plan
    /// whose static certificate has error findings
    /// ([`Error::Uncertified`]) instead of executing it.
    pub fn set_verify(&mut self, on: bool) {
        self.verify = on;
    }

    /// Whether strict verification is on.
    pub fn verify_enabled(&self) -> bool {
        self.verify
    }

    /// The certifier context this engine checks plans against.
    pub fn certify_context(&self) -> &CertifyContext {
        &self.certctx
    }

    /// The view DTD text exposed to users of this policy.
    pub fn exposed_view_dtd(&self) -> String {
        self.view.view_dtd_to_string()
    }

    /// Cumulative cache counters since the engine was built.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Cumulative accessibility-bitmap cache counters since the engine
    /// was built (all zero unless [`Approach::Annotate`] was used).
    pub fn access_stats(&self) -> AccessCacheStats {
        let map = read_recover(&self.access.map);
        AccessCacheStats {
            builds: self.access.builds.load(Ordering::Relaxed),
            hits: self.access.hits.load(Ordering::Relaxed),
            entries: map.len(),
            bytes: map.values().map(|a| a.bytes()).sum(),
            build_micros: self.access.build_micros.load(Ordering::Relaxed),
        }
    }

    /// The cached [`AccessView`] of `doc`, building (and caching) it on
    /// first use. The build runs the §3.2 accessibility pass — indexed
    /// when `index` is given — and one σ expansion; every later query
    /// over the same document shares the artifact.
    pub fn access_view(&self, doc: &Document, index: Option<&DocIndex>) -> Arc<AccessView> {
        let key = doc.doc_id();
        if let Some(av) = read_recover(&self.access.map).get(&key) {
            self.access.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(av);
        }
        let built = Arc::new(build_access_view(self.spec, self.view, doc, index));
        self.access.builds.fetch_add(1, Ordering::Relaxed);
        self.access.build_micros.fetch_add(built.build_micros(), Ordering::Relaxed);
        let mut map = write_recover(&self.access.map);
        if map.len() >= ACCESS_CACHE_CAPACITY && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().copied() {
                map.remove(&evict);
            }
        }
        // A racing builder may have inserted first; keep its artifact so
        // all concurrent callers share one copy.
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Seed the access cache with a pre-built artifact (e.g. loaded from
    /// an `.sxvpkg` package), so the first [`Approach::Annotate`] query
    /// pays neither the accessibility pass nor the σ expansion. The
    /// caller asserts the artifact was built for this engine's spec over
    /// the document stamped `doc_id`; a later [`Self::access_view`] call
    /// for that id is a cache hit.
    pub fn preload_access_view(&self, doc_id: DocId, view: Arc<AccessView>) {
        let mut map = write_recover(&self.access.map);
        if map.len() >= ACCESS_CACHE_CAPACITY && !map.contains_key(&doc_id) {
            if let Some(evict) = map.keys().next().copied() {
                map.remove(&evict);
            }
        }
        map.insert(doc_id, view);
    }

    /// The cached annotated copy of `doc` for [`Approach::Naive`],
    /// building it on first use. Annotation is a document-sized one-time
    /// setup (like the access artifact), not per-query work: repeated
    /// naive queries over one document must not re-annotate, or their
    /// timings measure setup instead of evaluation.
    fn naive_annotated(&self, doc: &Document) -> Arc<Document> {
        let key = doc.doc_id();
        if let Some(annotated) = read_recover(&self.naive).get(&key) {
            return Arc::clone(annotated);
        }
        let built = Arc::new(NaiveBaseline::annotate(self.spec, doc));
        let mut map = write_recover(&self.naive);
        if map.len() >= ACCESS_CACHE_CAPACITY && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().copied() {
                map.remove(&evict);
            }
        }
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Translate a view query to a document query.
    ///
    /// Recursive views translate directly into regular path expressions
    /// with Kleene closures — no document height is involved. Results
    /// are memoized (as full compiled plans) in a bounded sharded LRU
    /// keyed by the normalized query, the approach, and the planner
    /// policy.
    pub fn translate(&self, p: &Path, approach: Approach) -> Result<Path> {
        self.plan(p, approach, PlanPolicy::from(Backend::default()))
            .0
            .map(|planned| planned.plan.translated.clone())
    }

    /// Plan a view query end to end (translate → optimize → compile),
    /// memoized: the bool says whether the plan came from the cache, in
    /// which case *none* of those phases ran.
    pub fn plan_report(
        &self,
        p: &Path,
        approach: Approach,
        policy: PlanPolicy,
    ) -> (Result<Arc<CompiledQuery>>, bool) {
        let (planned, hit) = self.plan(p, approach, policy);
        (planned.map(|pl| pl.plan), hit)
    }

    /// Like [`SecureEngine::plan_report`], but returns the plan together
    /// with its cached static certificate.
    pub fn plan_certified(
        &self,
        p: &Path,
        approach: Approach,
        policy: PlanPolicy,
    ) -> (Result<Planned>, bool) {
        self.plan(p, approach, policy)
    }

    fn plan(&self, p: &Path, approach: Approach, policy: PlanPolicy) -> (Result<Planned>, bool) {
        let key = CacheKey { query: simplify(p), approach, policy };
        if let Some(cached) = self.cache.lookup(&key) {
            return (cached, true);
        }
        let planned = self.translate_uncached(&key.query, approach).map(|translated| {
            self.cache.plans_compiled.fetch_add(1, Ordering::Relaxed);
            let plan = if approach == Approach::Annotate {
                // The view query is not rewritten: compile it to a plan
                // whose steps filter through the accessibility artifact.
                Arc::new(compile_annotate(&translated, policy, &self.cost))
            } else {
                Arc::new(compile(&translated, policy, &self.cost))
            };
            // Certify once per compile; the certificate rides in the
            // cache entry so hits pay nothing.
            let cert = self.certify_counted(&plan);
            Planned { plan, cert, feedback: Arc::new(PlanFeedback::default()) }
        });
        self.cache.insert(key, planned.clone());
        (planned, false)
    }

    /// Run the static certifier over a freshly compiled plan, keeping
    /// the certification counters (time, count, failures) accurate.
    fn certify_counted(&self, plan: &CompiledQuery) -> Arc<PlanCertificate> {
        let started = std::time::Instant::now();
        let cert = Arc::new(certify(plan, &self.certctx));
        self.cache
            .certify_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.cache.plans_certified.fetch_add(1, Ordering::Relaxed);
        if !cert.certified() {
            self.cache.certify_failures.fetch_add(1, Ordering::Relaxed);
        }
        cert
    }

    fn translate_uncached(&self, p: &Path, approach: Approach) -> Result<Path> {
        match approach {
            // Annotate serves the view query as-is; security comes from
            // the per-document accessibility artifact at execution time.
            Approach::Annotate => Ok(p.clone()),
            Approach::Naive => Ok(NaiveBaseline::rewrite(p)),
            Approach::Rewrite | Approach::Optimize => {
                // Recursive views rewrite (and optimize) directly into
                // Kleene-closure expressions — the §4.2 unfolding oracle
                // (`rewrite_with_height`) stays out of the serving path.
                let rewritten = rewrite(self.view, p)?;
                if approach == Approach::Optimize {
                    optimize(self.spec.dtd(), &rewritten)
                } else {
                    Ok(rewritten)
                }
            }
        }
    }

    /// Answer a view query over `doc` with the default strategy
    /// (rewrite + optimize). Returns document nodes the user may access.
    pub fn answer(&self, doc: &Document, p: &Path) -> Result<Vec<NodeId>> {
        self.answer_with(doc, p, Approach::Optimize)
    }

    /// Answer using a prepared structural index ([`DocIndex`]) for the
    /// final evaluation: `//label` steps *and qualifier probes* of the
    /// translated query become interval lookups, and `[p = c]` string
    /// values come from the index's memoized text buffer. The index must
    /// have been built for `doc`.
    pub fn answer_indexed(
        &self,
        doc: &Document,
        index: &DocIndex,
        p: &Path,
    ) -> Result<Vec<NodeId>> {
        self.answer_report(doc, Some(index), p, Approach::Optimize).map(|(ans, _)| ans)
    }

    /// Answer with an explicit strategy. For [`Approach::Naive`], the
    /// annotated copy is built once per document and cached (keyed by
    /// `DocId`, like the access cache), so repeated queries measure
    /// evaluation, not annotation.
    pub fn answer_with(&self, doc: &Document, p: &Path, approach: Approach) -> Result<Vec<NodeId>> {
        self.answer_report(doc, None, p, approach).map(|(ans, _)| ans)
    }

    /// Answer and report the work done: the translated query, whether the
    /// translation was a cache hit, and evaluator counters. Passing an
    /// index enables the structural fast path end to end (axis steps,
    /// qualifier probes, string values). [`Approach::Naive`] evaluates
    /// over a cached annotated copy, so the given index (built for
    /// `doc`, not the copy) is ignored on that path.
    pub fn answer_report(
        &self,
        doc: &Document,
        index: Option<&DocIndex>,
        p: &Path,
        approach: Approach,
    ) -> Result<(Vec<NodeId>, QueryReport)> {
        self.answer_report_backend(doc, index, p, approach, Backend::Walk)
    }

    /// [`SecureEngine::answer_report`] with an explicit evaluation
    /// backend — kept as the stable surface; backends map onto planner
    /// policies ([`Backend::Walk`] → force-walk, [`Backend::Join`] →
    /// force-join). Prefer [`SecureEngine::answer_report_policy`] with
    /// [`PlanPolicy::Auto`] to let the planner choose per step.
    pub fn answer_report_backend(
        &self,
        doc: &Document,
        index: Option<&DocIndex>,
        p: &Path,
        approach: Approach,
        backend: Backend,
    ) -> Result<(Vec<NodeId>, QueryReport)> {
        self.answer_report_policy(doc, index, p, approach, PlanPolicy::from(backend))
    }

    /// Answer by compiled plan: fetch (or compile-and-cache) the plan for
    /// `(query, approach, policy)` and execute it. A cache hit skips
    /// parse-normalize, rewrite, optimize *and* planning — only the
    /// executor runs. The index is a pure accelerator: plans are compiled
    /// for indexed serving and degrade to subtree scans without one.
    /// [`Approach::Naive`] executes its plan over a per-document cached
    /// annotated copy, so the given index (built for `doc`, not the
    /// copy) is ignored on that path.
    pub fn answer_report_policy(
        &self,
        doc: &Document,
        index: Option<&DocIndex>,
        p: &Path,
        approach: Approach,
        policy: PlanPolicy,
    ) -> Result<(Vec<NodeId>, QueryReport)> {
        let (planned, cache_hit) = self.plan(p, approach, policy);
        let planned = planned?;
        let certified = planned.cert.certified();
        if self.verify && !certified {
            return Err(Error::Uncertified {
                query: p.to_string(),
                findings: planned
                    .cert
                    .errors()
                    .map(|f| f.describe())
                    .collect::<Vec<_>>()
                    .join("; "),
            });
        }
        let plan = &planned.plan;
        // Adaptive Auto: exactly one execution per cached plan runs
        // profiled (a one-shot latch shared across cache clones),
        // recording observed per-operator cardinalities. When they
        // diverge far enough from the plancost estimates, the plan is
        // recompiled against calibrated statistics and the cache entry
        // replaced — this call still answers from the profiled run.
        let adaptive =
            policy == PlanPolicy::Auto && !planned.feedback.profiled.swap(true, Ordering::Relaxed);
        let (answer, eval) = if adaptive {
            let (answer, eval, observed) = match approach {
                Approach::Naive => {
                    let annotated = self.naive_annotated(doc);
                    plan.execute_profiled(&annotated, None, None)
                }
                Approach::Annotate => {
                    let access = self.access_view(doc, index);
                    plan.execute_profiled(doc, index, Some(&access))
                }
                _ => plan.execute_profiled(doc, index, None),
            };
            self.maybe_recompile(p, approach, policy, plan, &observed);
            (answer, eval)
        } else {
            match approach {
                Approach::Naive => {
                    let annotated = self.naive_annotated(doc);
                    plan.execute(&annotated, None)
                }
                Approach::Annotate => {
                    let access = self.access_view(doc, index);
                    plan.execute_with_access(doc, index, Some(&access))
                }
                _ => plan.execute(doc, index),
            }
        };
        Ok((
            answer,
            QueryReport {
                translated: plan.translated.clone(),
                cache_hit,
                eval,
                plan: plan.summary(),
                policy,
                certified,
            },
        ))
    }

    /// Decide whether a profiled `Auto` execution earned a recompile,
    /// and perform it: any operator whose observed output diverges from
    /// its `est_rows` by ≥ [`ADAPT_RATIO`] — and is large enough in
    /// magnitude ([`ADAPT_MIN_ROWS`]) for the divergence to matter —
    /// triggers one recompile against a cost model calibrated with the
    /// observed per-label cardinalities. The replacement enters the
    /// cache pre-latched, so it never profiles (or recompiles) again.
    fn maybe_recompile(
        &self,
        p: &Path,
        approach: Approach,
        policy: PlanPolicy,
        plan: &CompiledQuery,
        observed: &[u64],
    ) {
        let diverged = plan.ops.iter().zip(observed).any(|(node, &obs)| {
            let est = node.est_rows.max(1);
            let (lo, hi) = if obs < est { (obs.max(1), est) } else { (est, obs.max(1)) };
            hi >= ADAPT_RATIO * lo && hi >= ADAPT_MIN_ROWS
        });
        if !diverged {
            return;
        }
        let calibrated = calibrate(&self.cost, label_observations(&plan.ops, observed));
        let recompiled = if approach == Approach::Annotate {
            Arc::new(compile_annotate(&plan.translated, policy, &calibrated))
        } else {
            Arc::new(compile(&plan.translated, policy, &calibrated))
        };
        let cert = self.certify_counted(&recompiled);
        self.cache.plans_recompiled.fetch_add(1, Ordering::Relaxed);
        let planned =
            Planned { plan: recompiled, cert, feedback: Arc::new(PlanFeedback::latched()) };
        self.cache.insert(CacheKey { query: simplify(p), approach, policy }, Ok(planned));
    }

    /// Answer a batch of view queries concurrently over one shared
    /// immutable document (and optional index), fanning the queries
    /// across `threads` scoped workers that pull from a shared cursor.
    /// Results come back in input order, one `Result` per query; a worker
    /// that panics mid-query costs only its own unreported queries
    /// ([`Error::WorkerLost`]) — the plan cache recovers poisoned
    /// shard locks instead of propagating the panic.
    pub fn answer_batch(
        &self,
        doc: &Document,
        index: Option<&DocIndex>,
        queries: &[Path],
        approach: Approach,
        policy: PlanPolicy,
        threads: usize,
    ) -> Vec<Result<(Vec<NodeId>, QueryReport)>> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            return queries
                .iter()
                .map(|p| self.answer_report_policy(doc, index, p, approach, policy))
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut results: Vec<Result<(Vec<NodeId>, QueryReport)>> =
            queries.iter().map(|_| Err(Error::WorkerLost)).collect();
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut answered = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some(p) = queries.get(i) else { break };
                            answered.push((
                                i,
                                self.answer_report_policy(doc, index, p, approach, policy),
                            ));
                        }
                        answered
                    })
                })
                .collect();
            for worker in workers {
                // A panicked worker loses its slots (they keep the
                // WorkerLost placeholder); everyone else's answers land.
                if let Ok(answered) = worker.join() {
                    for (i, r) in answered {
                        results[i] = r;
                    }
                }
            }
        });
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::parse;

    fn setup() -> (AccessSpec, SecurityView, Document) {
        let dtd = parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml(
            r#"<hospital><dept>
<clinicalTrial><patientInfo><patient><name>Ann</name><wardNo>6</wardNo>
<treatment><trial><bill>100</bill></trial></treatment></patient></patientInfo><test>t</test></clinicalTrial>
<patientInfo><patient><name>Bob</name><wardNo>6</wardNo>
<treatment><regular><bill>70</bill><medication>m</medication></regular></treatment></patient></patientInfo>
<staffInfo/></dept></hospital>"#,
        )
        .unwrap();
        (spec, view, doc)
    }

    #[test]
    fn all_approaches_agree_on_paper_queries() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//patient/name", "//bill", "dept/patientInfo/patient", "//name"] {
            let p = parse(q).unwrap();
            let rewrite_ans = engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
            let optimize_ans = engine.answer_with(&doc, &p, Approach::Optimize).unwrap();
            let naive_ans = engine.answer_with(&doc, &p, Approach::Naive).unwrap();
            assert_eq!(rewrite_ans, optimize_ans, "{q}");
            // Naive evaluates on an annotated *copy*: same arena layout, so
            // NodeIds are directly comparable.
            assert_eq!(rewrite_ans, naive_ans, "{q}");
        }
    }

    #[test]
    fn annotate_agrees_with_rewrite() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        for q in ["//patient/name", "//bill", "dept/patientInfo/patient", "//name", "dept/*", "//*"]
        {
            let p = parse(q).unwrap();
            let rewrite_ans = engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
            for index in [None, Some(&index)] {
                for policy in PlanPolicy::ALL {
                    let (ans, report) = engine
                        .answer_report_policy(&doc, index, &p, Approach::Annotate, policy)
                        .unwrap();
                    assert_eq!(ans, rewrite_ans, "{q} ({policy:?}, indexed={})", index.is_some());
                    assert_eq!(report.translated, simplify(&p), "annotate must not rewrite");
                }
            }
        }
    }

    #[test]
    fn annotate_blocks_sensitive_labels() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//clinicalTrial", "//trial", "//test", "//regular"] {
            let ans = engine.answer_with(&doc, &parse(q).unwrap(), Approach::Annotate).unwrap();
            assert!(ans.is_empty(), "{q} leaked {} nodes", ans.len());
        }
        let bills =
            engine.answer_with(&doc, &parse("//bill").unwrap(), Approach::Annotate).unwrap();
        assert_eq!(bills.len(), 2);
    }

    #[test]
    fn access_view_built_once_per_document() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        assert_eq!(engine.access_stats(), AccessCacheStats::default());
        let p = parse("//patient/name").unwrap();
        engine.answer_with(&doc, &p, Approach::Annotate).unwrap();
        let first = engine.access_stats();
        assert_eq!((first.builds, first.hits, first.entries), (1, 0, 1));
        assert!(first.bytes > 0);
        engine.answer_with(&doc, &parse("//bill").unwrap(), Approach::Annotate).unwrap();
        let second = engine.access_stats();
        assert_eq!(second.builds, 1, "second query must not rebuild the artifact");
        assert_eq!(second.hits, 1);
        assert_eq!(second.build_micros, first.build_micros);
        // A different document gets its own artifact.
        let other = parse_xml("<hospital><dept/></hospital>").unwrap();
        engine.answer_with(&other, &p, Approach::Annotate).unwrap();
        assert_eq!(engine.access_stats().builds, 2);
    }

    #[test]
    fn naive_annotated_copy_is_built_once_per_document() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let first = engine.naive_annotated(&doc);
        let second = engine.naive_annotated(&doc);
        assert!(Arc::ptr_eq(&first, &second), "repeat queries must share the annotated copy");
        // Queries through the public path use (and keep) the same copy.
        engine.answer_with(&doc, &parse("//bill").unwrap(), Approach::Naive).unwrap();
        assert!(Arc::ptr_eq(&first, &engine.naive_annotated(&doc)));
        // A different document gets its own annotated copy.
        let other = parse_xml("<hospital><dept/></hospital>").unwrap();
        assert!(!Arc::ptr_eq(&first, &engine.naive_annotated(&other)));
    }

    #[test]
    fn preloaded_access_view_skips_the_build() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let artifact = Arc::new(crate::annotate::build_access_view(&spec, &view, &doc, None));
        engine.preload_access_view(doc.doc_id(), Arc::clone(&artifact));
        let served = engine.access_view(&doc, None);
        assert!(Arc::ptr_eq(&artifact, &served), "preloaded artifact must be served as-is");
        let stats = engine.access_stats();
        assert_eq!((stats.builds, stats.hits, stats.entries), (0, 1, 1));
        // Annotate queries run off the preloaded artifact with no build.
        engine.answer_with(&doc, &parse("//bill").unwrap(), Approach::Annotate).unwrap();
        assert_eq!(engine.access_stats().builds, 0);
    }

    #[test]
    fn access_cache_does_not_alias_replaced_documents() {
        // Regression test for the pointer-keyed AccessView cache: keying
        // by `(address, len)` serves a *dropped* document's bitmaps to a
        // different same-length document whose allocation lands on the
        // same address — which boxed same-size allocations routinely do.
        // With `DocId` keys the second document always builds its own
        // artifact.
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        // Same node count and shape; only the ward number differs, so
        // document A has a visible dept (wardNo=6) and document B hides
        // everything (wardNo=7 fails the σ qualifier).
        let xml = |ward: &str| {
            format!(
                "<hospital><dept><patientInfo><patient><name>Ann</name><wardNo>{ward}</wardNo>\
                 <treatment><trial><bill>9</bill></trial></treatment></patient></patientInfo>\
                 <staffInfo/></dept></hospital>"
            )
        };
        let a = Box::new(parse_xml(&xml("6")).unwrap());
        let len_a = a.len();
        let visible = engine.answer_with(&a, &p, Approach::Annotate).unwrap();
        assert_eq!(visible.len(), 1, "ward 6 exposes Ann");
        drop(a);
        // B is a distinct same-length document; a recycled allocation
        // must not resurrect A's accessibility bitmaps.
        let b = Box::new(parse_xml(&xml("7")).unwrap());
        assert_eq!(b.len(), len_a, "the aliasing trap needs equal lengths");
        let hidden = engine.answer_with(&b, &p, Approach::Annotate).unwrap();
        let fresh = SecureEngine::new(&spec, &view);
        assert_eq!(
            hidden,
            fresh.answer_with(&b, &p, Approach::Annotate).unwrap(),
            "cached engine must answer exactly like a cold engine"
        );
        assert!(hidden.is_empty(), "ward 7 dept is hidden; stale bitmaps leaked a name");
        assert_eq!(
            engine.access_stats().builds,
            2,
            "the second document must build its own artifact, not hit A's"
        );
    }

    #[test]
    fn access_cache_concurrent_eviction_stays_consistent() {
        // Many callers racing the ACCESS_CACHE_CAPACITY eviction path:
        // more distinct documents than the cache holds, hammered from
        // several threads. Every call must either hit or build (never
        // both, never neither), the resident set must respect capacity,
        // and all answers must match a cold engine's.
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        let docs: Vec<Document> = (0..ACCESS_CACHE_CAPACITY + 4)
            .map(|i| {
                parse_xml(&format!(
                    "<hospital><dept><patientInfo><patient><name>P{i}</name>\
                     <wardNo>6</wardNo><treatment><trial><bill>1</bill></trial></treatment>\
                     </patient></patientInfo><staffInfo/></dept></hospital>"
                ))
                .unwrap()
            })
            .collect();
        const ROUNDS: usize = 8;
        let threads = 4;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let engine = &engine;
                    let docs = &docs;
                    let p = &p;
                    s.spawn(move || {
                        for r in 0..ROUNDS {
                            // Different threads walk the documents in
                            // different orders so hits, builds and
                            // evictions interleave.
                            for i in 0..docs.len() {
                                let doc = &docs[(i * (t + 1) + r) % docs.len()];
                                let ans = engine.answer_with(doc, p, Approach::Annotate).unwrap();
                                assert_eq!(ans.len(), 1, "every doc exposes its one patient");
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        let stats = engine.access_stats();
        let calls = (threads * ROUNDS * docs.len()) as u64;
        assert_eq!(
            stats.builds + stats.hits,
            calls,
            "each access_view call hits or builds exactly once"
        );
        assert!(stats.builds >= docs.len() as u64, "every distinct document built at least once");
        assert!(stats.entries <= ACCESS_CACHE_CAPACITY, "eviction respects capacity");
        assert!(stats.bytes > 0);
        // Racing builders on one document must still share a single Arc.
        let shared: Vec<Arc<AccessView>> = std::thread::scope(|s| {
            let handles: Vec<_> =
                (0..threads).map(|_| s.spawn(|| engine.access_view(&docs[0], None))).collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            shared.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])),
            "concurrent callers over one document share one artifact"
        );
    }

    #[test]
    fn annotate_batch_matches_sequential() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        let queries: Vec<Path> = ["//patient/name", "//bill", "//name", "dept/*"]
            .iter()
            .cycle()
            .take(24)
            .map(|q| parse(q).unwrap())
            .collect();
        let sequential: Vec<Vec<NodeId>> = queries
            .iter()
            .map(|p| engine.answer_with(&doc, p, Approach::Annotate).unwrap())
            .collect();
        let batch = engine.answer_batch(
            &doc,
            Some(&index),
            &queries,
            Approach::Annotate,
            PlanPolicy::Auto,
            4,
        );
        for (i, result) in batch.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().0, sequential[i], "query {i}");
        }
        let stats = engine.access_stats();
        assert_eq!(stats.entries, 1, "workers share one artifact");
    }

    #[test]
    fn sensitive_data_unreachable() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//clinicalTrial", "//trial", "//test", "//regular"] {
            let ans = engine.answer(&doc, &parse(q).unwrap()).unwrap();
            assert!(ans.is_empty(), "{q} leaked {} nodes", ans.len());
        }
        // But the *content* the nurse may see under those regions flows.
        let bills = engine.answer(&doc, &parse("//bill").unwrap()).unwrap();
        assert_eq!(bills.len(), 2);
    }

    #[test]
    fn exposed_dtd_hides_sigma_and_labels() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let exposed = engine.exposed_view_dtd();
        assert!(exposed.contains("dept"));
        assert!(!exposed.contains("clinicalTrial"));
        assert!(!exposed.contains("wardNo='6'"), "σ qualifier must not leak");
    }

    #[test]
    fn indexed_answers_match() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).expect("parsed docs are in document order");
        for q in ["//patient/name", "//bill", "//clinicalTrial", "dept/*"] {
            let p = parse(q).unwrap();
            assert_eq!(
                engine.answer(&doc, &p).unwrap(),
                engine.answer_indexed(&doc, &index, &p).unwrap(),
                "{q}"
            );
        }
    }

    #[test]
    fn translation_cache_hits_on_repeat_and_normalized_queries() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        let first = engine.answer(&doc, &p).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));

        let second = engine.answer(&doc, &p).unwrap();
        assert_eq!(first, second);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));

        // Normalization: an equivalent-after-simplification query shares
        // the entry instead of retranslating.
        let p2 = parse("//patient/name | //patient/name").unwrap();
        engine.answer(&doc, &p2).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));

        // Different approach = different entry.
        engine.answer_with(&doc, &p, Approach::Rewrite).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    }

    #[test]
    fn auto_policy_recompiles_once_on_cardinality_divergence() {
        let (spec, view, _) = setup();
        // A document far wider than the DTD-derived estimates: hundreds
        // of patients where plancost expects ~32, so the profiled first
        // execution sees a >8x divergence above the magnitude floor.
        let mut src = String::from(
            "<hospital><dept><clinicalTrial><patientInfo/><test>t</test></clinicalTrial><patientInfo>",
        );
        for i in 0..300 {
            src.push_str(&format!(
                "<patient><name>p{i}</name><wardNo>6</wardNo><treatment><regular>\
                 <bill>1</bill><medication>m</medication></regular></treatment></patient>"
            ));
        }
        src.push_str("</patientInfo><staffInfo/></dept></hospital>");
        let doc = parse_xml(&src).unwrap();
        let index = DocIndex::new(&doc).unwrap();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient").unwrap();
        let (first, report) = engine
            .answer_report_policy(&doc, Some(&index), &p, Approach::Annotate, PlanPolicy::Auto)
            .unwrap();
        assert_eq!(first.len(), 300);
        assert!(!report.cache_hit);
        let stats = engine.cache_stats();
        assert_eq!(stats.plans_compiled, 1, "recompiles never count as compiles");
        assert_eq!(stats.plans_recompiled, 1, "first Auto execution profiles and recompiles");
        assert_eq!(stats.plans_certified, 2, "the replacement plan is re-certified");
        // The replacement serves from the cache and never re-profiles.
        let (second, report2) = engine
            .answer_report_policy(&doc, Some(&index), &p, Approach::Annotate, PlanPolicy::Auto)
            .unwrap();
        assert_eq!(first, second);
        assert!(report2.cache_hit);
        let stats = engine.cache_stats();
        assert_eq!((stats.plans_compiled, stats.plans_recompiled), (1, 1));
    }

    #[test]
    fn auto_policy_skips_recompile_on_small_documents() {
        // The magnitude floor: toy cardinalities diverge by ratio all
        // the time (0 observed vs 8 estimated), but a recompile there
        // costs more than every future execution combined.
        let (spec, view, doc) = setup();
        let index = DocIndex::new(&doc).unwrap();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//patient/name", "//bill", "//name"] {
            let p = parse(q).unwrap();
            let (a1, _) = engine
                .answer_report_policy(&doc, Some(&index), &p, Approach::Optimize, PlanPolicy::Auto)
                .unwrap();
            let (a2, _) = engine
                .answer_report_policy(&doc, Some(&index), &p, Approach::Optimize, PlanPolicy::Auto)
                .unwrap();
            assert_eq!(a1, a2);
        }
        assert_eq!(engine.cache_stats().plans_recompiled, 0);
    }

    #[test]
    fn translation_cache_reports_hit_per_query() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//bill").unwrap();
        let (_, report) = engine.answer_report(&doc, None, &p, Approach::Optimize).unwrap();
        assert!(!report.cache_hit);
        let (_, report) = engine.answer_report(&doc, None, &p, Approach::Optimize).unwrap();
        assert!(report.cache_hit);
        assert_eq!(report.translated, engine.translate(&p, Approach::Optimize).unwrap());
    }

    #[test]
    fn plan_cache_hits_skip_compilation() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        for _ in 0..3 {
            engine.answer(&doc, &p).unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.plans_compiled, 1, "repeats must not re-plan");
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9, "{}", stats.hit_rate());
        // A different policy is a different plan: exactly one more compile.
        engine.answer_report_policy(&doc, None, &p, Approach::Optimize, PlanPolicy::Auto).unwrap();
        assert_eq!(engine.cache_stats().plans_compiled, 2);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn plan_cache_key_is_height_free_for_recursive_views() {
        // part → sub → part keeps a cycle in the derived view, so
        // translation goes through the Kleene closure and the cache key
        // carries no document height: one compiled plan serves documents
        // of every depth. Under the old per-height unfolding key, the
        // deeper document below would have missed and recompiled.
        let dtd = parse_dtd(
            r#"
<!ELEMENT bom (part*)>
<!ELEMENT part (partno, cost, sub)>
<!ELEMENT sub (part*)>
<!ELEMENT partno (#PCDATA)>
<!ELEMENT cost (#PCDATA)>
"#,
            "bom",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("part", "cost").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert!(view.is_recursive(), "the part cycle must survive derivation");
        let engine = SecureEngine::new(&spec, &view);
        let shallow =
            parse_xml("<bom><part><partno>a</partno><cost>1</cost><sub/></part></bom>").unwrap();
        let deep = parse_xml(
            "<bom><part><partno>a</partno><cost>1</cost><sub>\
             <part><partno>b</partno><cost>2</cost><sub>\
             <part><partno>c</partno><cost>3</cost><sub>\
             <part><partno>d</partno><cost>4</cost><sub/></part>\
             </sub></part></sub></part></sub></part></bom>",
        )
        .unwrap();
        assert!(deep.height() > shallow.height());
        let p = parse("//partno").unwrap();
        let (ans, report) = engine.answer_report(&shallow, None, &p, Approach::Optimize).unwrap();
        assert_eq!(ans.len(), 1);
        assert!(!report.cache_hit, "first answer compiles the closure plan");
        let (ans, report) = engine.answer_report(&deep, None, &p, Approach::Optimize).unwrap();
        assert_eq!(ans.len(), 4, "the closure reaches every nesting level");
        assert!(report.cache_hit, "a deeper document must not miss the cache");
        assert_eq!(engine.cache_stats().plans_compiled, 1, "one plan serves both heights");
        // The cached entry is one shared Arc, not a per-document clone.
        let (a, _) = engine.plan_report(&p, Approach::Optimize, PlanPolicy::ForceWalk);
        let (b, _) = engine.plan_report(&p, Approach::Optimize, PlanPolicy::ForceWalk);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    }

    #[test]
    fn auto_policy_matches_forced_plans() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        for q in ["//patient/name", "//bill", "dept/*", "//name", "//clinicalTrial"] {
            let p = parse(q).unwrap();
            let mut answers = Vec::new();
            for policy in PlanPolicy::ALL {
                let (ans, report) = engine
                    .answer_report_policy(&doc, Some(&index), &p, Approach::Optimize, policy)
                    .unwrap();
                assert_eq!(report.policy, policy);
                answers.push(ans);
            }
            assert!(answers.windows(2).all(|w| w[0] == w[1]), "{q}: policies disagree");
        }
    }

    #[test]
    fn report_carries_plan_metadata() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient/name").unwrap();
        let (ans, report) = engine.answer_report(&doc, None, &p, Approach::Optimize).unwrap();
        assert!(report.plan.total_ops() > 0, "plan summary must count operators");
        assert!(report.plan.est_rows > 0, "DTD estimates should expect some names");
        assert!(!ans.is_empty());
        // Walk-policy plans never contain merge-join operators.
        assert_eq!(report.plan.child_merge_join, 0);
        let (_, joined) = engine
            .answer_report_policy(&doc, None, &p, Approach::Optimize, PlanPolicy::ForceJoin)
            .unwrap();
        assert_eq!(joined.plan.child_walk, 0, "{:?}", joined.plan);
    }

    #[test]
    fn plan_report_exposes_compiled_plan() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//bill").unwrap();
        let (planned, hit) = engine.plan_report(&p, Approach::Optimize, PlanPolicy::Auto);
        let plan = planned.unwrap();
        assert!(!hit);
        assert_eq!(plan.translated, engine.translate(&p, Approach::Optimize).unwrap());
        let (again, hit2) = engine.plan_report(&p, Approach::Optimize, PlanPolicy::Auto);
        assert!(hit2);
        assert!(Arc::ptr_eq(&plan, &again.unwrap()), "hits share the cached Arc");
    }

    #[test]
    fn pipeline_plans_certify_across_approaches_and_policies() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        for q in ["//patient/name", "//bill", "dept/patientInfo/patient", "//name", "//test"] {
            let p = parse(q).unwrap();
            for approach in [Approach::Rewrite, Approach::Optimize, Approach::Annotate] {
                for policy in PlanPolicy::ALL {
                    let (planned, _) = engine.plan_certified(&p, approach, policy);
                    let planned = planned.unwrap();
                    assert!(
                        planned.cert.certified(),
                        "{q} ({approach:?}, {policy:?}): {:?}",
                        planned.cert.errors().map(|f| f.describe()).collect::<Vec<_>>()
                    );
                    let (_, report) =
                        engine.answer_report_policy(&doc, None, &p, approach, policy).unwrap();
                    assert!(report.certified, "{q} ({approach:?}, {policy:?})");
                }
            }
        }
    }

    #[test]
    fn verify_mode_refuses_uncertified_naive_plan() {
        let (spec, view, doc) = setup();
        // The naive baseline's plan walks the *document* DTD and relies on
        // runtime `@accessibility` filtering, which the certifier cannot
        // credit: a query into a hidden region must be refused under
        // --verify even though runtime enforcement would empty it.
        let mut engine = SecureEngine::new(&spec, &view);
        let p = parse("//test").unwrap();
        let (_, report) =
            engine.answer_report_policy(&doc, None, &p, Approach::Naive, PlanPolicy::Auto).unwrap();
        assert!(!report.certified, "naive //test should carry a failing certificate");
        engine.set_verify(true);
        assert!(engine.verify_enabled());
        let err = engine
            .answer_report_policy(&doc, None, &p, Approach::Naive, PlanPolicy::Auto)
            .unwrap_err();
        match err {
            Error::Uncertified { query, findings } => {
                assert_eq!(query, p.to_string());
                assert!(findings.contains("test"), "{findings}");
            }
            other => panic!("expected Uncertified, got {other:?}"),
        }
        // Certified plans still serve under strict verification.
        let p_ok = parse("//bill").unwrap();
        let (ans, report) = engine
            .answer_report_policy(&doc, None, &p_ok, Approach::Optimize, PlanPolicy::Auto)
            .unwrap();
        assert!(report.certified);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn certify_counters_track_compiles_and_failures() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//bill").unwrap();
        engine.answer(&doc, &p).unwrap();
        engine.answer(&doc, &p).unwrap(); // hit: no re-certification
        let stats = engine.cache_stats();
        assert_eq!(stats.plans_certified, 1, "one certificate per compile");
        assert_eq!(stats.certify_failures, 0);
        engine
            .answer_report_policy(
                &doc,
                None,
                &parse("//test").unwrap(),
                Approach::Naive,
                PlanPolicy::Auto,
            )
            .unwrap();
        let stats = engine.cache_stats();
        assert_eq!(stats.plans_certified, 2);
        assert_eq!(stats.certify_failures, 1, "the naive hidden-region plan fails");
    }

    #[test]
    fn translation_cache_evicts_least_recently_used() {
        let (spec, view, _) = setup();
        let engine = SecureEngine::with_cache_capacity(&spec, &view, 2);
        let a = parse("//bill").unwrap();
        let b = parse("//name").unwrap();
        let c = parse("//patient").unwrap();
        engine.translate(&a, Approach::Optimize).unwrap();
        engine.translate(&b, Approach::Optimize).unwrap();
        engine.translate(&a, Approach::Optimize).unwrap(); // refresh a
        engine.translate(&c, Approach::Optimize).unwrap(); // evicts b
        let before = engine.cache_stats();
        engine.translate(&a, Approach::Optimize).unwrap(); // still cached
        assert_eq!(engine.cache_stats().hits, before.hits + 1);
        engine.translate(&b, Approach::Optimize).unwrap(); // was evicted
        assert_eq!(engine.cache_stats().misses, before.misses + 1);
        assert!(engine.cache_stats().entries <= 2);
    }

    #[test]
    fn indexed_report_counts_index_work_and_agrees() {
        // Rewriting eliminates view-level `//` on non-recursive views, so
        // the structural index earns its keep inside *qualifiers*: use a σ
        // condition with a descendant probe so the translated query keeps
        // one, then check the indexed path does strictly less axis work.
        let (base, _, doc) = setup();
        let spec = AccessSpec::builder(base.dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "//wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        // `Rewrite` keeps σ qualifiers verbatim (`Optimize` may simplify
        // the descendant probe into child paths, leaving nothing for the
        // index to accelerate).
        for q in ["//patient[name='Bob']/name", "//patient/name", "//bill"] {
            let p = parse(q).unwrap();
            let (scan_ans, scan) = engine.answer_report(&doc, None, &p, Approach::Rewrite).unwrap();
            let (idx_ans, idx) =
                engine.answer_report(&doc, Some(&index), &p, Approach::Rewrite).unwrap();
            assert_eq!(scan_ans, idx_ans, "{q}");
            assert!(!scan_ans.is_empty(), "{q} should select something");
            assert_eq!(scan.eval.index_lookups, 0, "{q}");
            assert!(idx.eval.index_lookups > 0, "{q}: indexed path must probe the index");
            assert!(
                idx.eval.nodes_touched < scan.eval.nodes_touched,
                "{q}: indexed {} vs scan {}",
                idx.eval.nodes_touched,
                scan.eval.nodes_touched
            );
        }
    }

    #[test]
    fn default_answer_uses_optimize() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//patient").unwrap();
        assert_eq!(
            engine.answer(&doc, &p).unwrap(),
            engine.answer_with(&doc, &p, Approach::Optimize).unwrap()
        );
    }

    #[test]
    fn join_backend_answers_match_walk() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        for q in ["//patient/name", "//bill", "//clinicalTrial", "dept/*", "//name"] {
            let p = parse(q).unwrap();
            for approach in [Approach::Rewrite, Approach::Optimize] {
                let (walk, _) =
                    engine.answer_report_backend(&doc, None, &p, approach, Backend::Walk).unwrap();
                let (join, _) = engine
                    .answer_report_backend(&doc, Some(&index), &p, approach, Backend::Join)
                    .unwrap();
                assert_eq!(walk, join, "{q}");
            }
        }
    }

    #[test]
    fn answer_batch_matches_sequential_and_keeps_order() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let index = DocIndex::new(&doc).unwrap();
        let queries: Vec<Path> = ["//patient/name", "//bill", "//name", "dept/*", "//wardNo"]
            .iter()
            .cycle()
            .take(40)
            .map(|q| parse(q).unwrap())
            .collect();
        let sequential: Vec<Vec<NodeId>> =
            queries.iter().map(|p| engine.answer_indexed(&doc, &index, p).unwrap()).collect();
        for threads in [1, 2, 4] {
            let batch = engine.answer_batch(
                &doc,
                Some(&index),
                &queries,
                Approach::Optimize,
                PlanPolicy::ForceJoin,
                threads,
            );
            assert_eq!(batch.len(), queries.len());
            for (i, result) in batch.iter().enumerate() {
                let (ans, _) = result.as_ref().expect("no worker died");
                assert_eq!(ans, &sequential[i], "query {i} at {threads} threads");
            }
        }
        // The shared cache served repeats: 5 distinct queries, many hits.
        let stats = engine.cache_stats();
        assert!(stats.hits > stats.misses, "hits {} misses {}", stats.hits, stats.misses);
    }

    #[test]
    fn answer_batch_empty_and_oversubscribed() {
        let (spec, view, doc) = setup();
        let engine = SecureEngine::new(&spec, &view);
        assert!(engine
            .answer_batch(&doc, None, &[], Approach::Optimize, PlanPolicy::ForceWalk, 8)
            .is_empty());
        let queries = [parse("//bill").unwrap()];
        let batch = engine.answer_batch(
            &doc,
            None,
            &queries,
            Approach::Optimize,
            PlanPolicy::ForceWalk,
            64,
        );
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].as_ref().unwrap().0.len(), 2);
    }

    #[test]
    fn cache_survives_poisoned_shard() {
        // Poison every shard lock by panicking while holding the write
        // guard, then check the cache still serves lookups and inserts.
        let (spec, view, _) = setup();
        let engine = SecureEngine::new(&spec, &view);
        let p = parse("//bill").unwrap();
        engine.translate(&p, Approach::Optimize).unwrap();
        let before = engine.cache_stats();
        std::thread::scope(|s| {
            for shard in &engine.cache.shards {
                let _ = s
                    .spawn(|| {
                        let _guard = shard.write().unwrap();
                        panic!("poison the shard");
                    })
                    .join();
            }
        });
        assert!(engine.cache.shards.iter().all(|s| s.is_poisoned()), "shards must be poisoned");
        engine.translate(&p, Approach::Optimize).unwrap();
        let after = engine.cache_stats();
        assert_eq!(after.hits, before.hits + 1, "lookup recovers the poisoned guard");
        let p2 = parse("//name").unwrap();
        engine.translate(&p2, Approach::Optimize).unwrap();
        assert_eq!(engine.cache_stats().entries, before.entries + 1, "insert recovers too");
    }

    #[test]
    fn cache_shards_scale_with_capacity() {
        let (spec, view, _) = setup();
        let small = SecureEngine::with_cache_capacity(&spec, &view, 2);
        assert_eq!(small.cache.shards.len(), 1, "tiny caches stay exact-LRU");
        let default = SecureEngine::new(&spec, &view);
        assert_eq!(default.cache.shards.len(), MAX_CACHE_SHARDS);
        let off = SecureEngine::with_cache_capacity(&spec, &view, 0);
        let p = parse("//bill").unwrap();
        off.translate(&p, Approach::Optimize).unwrap();
        off.translate(&p, Approach::Optimize).unwrap();
        assert_eq!(off.cache_stats().entries, 0, "capacity 0 disables caching");
    }

    #[test]
    fn engine_is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<SecureEngine<'_>>();
    }
}

//! Static type-level analysis — the foundation of the `sxv lint`
//! policy/view auditor.
//!
//! Everything here is decided over the DTD alone, before any document is
//! loaded:
//!
//! * [`TypeAccessibility`] lifts the node-level accessibility semantics of
//!   §3.2 to element *types*: a fixpoint over (type, context) pairs using
//!   exactly the classification rules of algorithm `derive` (Fig. 5), so
//!   "can be accessible" coincides with "gets a view production".
//! * [`audit_view`] independently re-checks a [`SecurityView`] against its
//!   [`AccessSpec`] — *soundness* (no σ annotation exposes a type that is
//!   never accessible, and σ(A, B) only reaches `B`-labelled nodes) and
//!   *completeness* (every possibly-accessible type is reachable in the
//!   view DTD), plus heuristic dummy-inference checks in the spirit of
//!   Example 1.1.
//!
//! The auditor never trusts `derive`: it recomputes reachability through
//! the σ annotations with the §5.1 image-graph machinery over the
//! document-DTD graph. For views produced by `derive` the audit always
//! passes (a property test asserts this agreement); its purpose is to
//! catch hand-authored or corrupted view definitions at load time.

use crate::optimize::image::image;
use crate::rewrite::ViewGraph;
use crate::spec::{AccessSpec, Annotation};
use crate::view::def::{SecurityView, ViewContent, ViewItem};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use sxv_dtd::DtdGraph;
use sxv_xpath::Path;

/// Static accessibility of element *types* under an access specification.
///
/// A type can occur in many document contexts; the two sets record which
/// classifications are possible, mirroring `Proc_Acc`/`Proc_InAcc` of
/// Fig. 5 (conditional annotations count as accessible — the qualifier
/// moves into σ, it does not hide the type statically).
#[derive(Debug, Clone)]
pub struct TypeAccessibility {
    can_acc: BTreeSet<String>,
    can_inacc: BTreeSet<String>,
}

impl TypeAccessibility {
    /// Run the fixpoint over the specification's DTD graph.
    pub fn compute(spec: &AccessSpec) -> TypeAccessibility {
        let graph = DtdGraph::new(spec.dtd());
        let root = graph.root();
        let mut can = vec![[false; 2]; graph.len()];
        // The root is accessible by definition (§3.2).
        can[root][0] = true;
        let mut queue: VecDeque<(usize, bool)> = VecDeque::from([(root, true)]);
        while let Some((a, parent_accessible)) = queue.pop_front() {
            for &b in graph.children(a) {
                // The classification rules of `Deriver::classify`.
                let accessible = match spec.annotation(graph.name_of(a), graph.name_of(b)) {
                    Some(Annotation::Allow) | Some(Annotation::Cond(_)) => true,
                    Some(Annotation::Deny) => false,
                    None => parent_accessible,
                };
                let slot = if accessible { 0 } else { 1 };
                if !can[b][slot] {
                    can[b][slot] = true;
                    queue.push_back((b, accessible));
                }
            }
        }
        let collect = |slot: usize| {
            can.iter()
                .enumerate()
                .filter(|(_, c)| c[slot])
                .map(|(i, _)| graph.name_of(i).to_string())
                .collect()
        };
        TypeAccessibility { can_acc: collect(0), can_inacc: collect(1) }
    }

    /// Some context makes instances of this type accessible.
    pub fn can_be_accessible(&self, name: &str) -> bool {
        self.can_acc.contains(name)
    }

    /// Some context makes instances of this type inaccessible.
    pub fn can_be_inaccessible(&self, name: &str) -> bool {
        self.can_inacc.contains(name)
    }

    /// The type occurs at all under the root (in either classification).
    pub fn is_reachable(&self, name: &str) -> bool {
        self.can_acc.contains(name) || self.can_inacc.contains(name)
    }

    /// Every occurrence is accessible (modulo ancestor qualifiers) — a
    /// child annotated `Y` under such a type is redundant.
    pub fn definitely_accessible(&self, name: &str) -> bool {
        self.can_acc.contains(name) && !self.can_inacc.contains(name)
    }

    /// The type is reachable but no occurrence is ever accessible —
    /// exposing it in a view leaks hidden data.
    pub fn definitely_inaccessible(&self, name: &str) -> bool {
        !self.can_acc.contains(name) && self.can_inacc.contains(name)
    }

    /// All types with at least one accessible context, sorted.
    pub fn accessible_types(&self) -> impl Iterator<Item = &str> {
        self.can_acc.iter().map(String::as_str)
    }
}

/// Build the plain-data context the plan certifier
/// ([`sxv_xpath::certify`]) needs, from a specification and its view:
/// the DTD edge graph, the §3.2 type-accessibility sets, and the
/// dummy-label information (which document types the view deliberately
/// serves under a renamed dummy label — σ-image propagation, the same
/// machinery as [`audit_view`]).
pub fn certify_context(spec: &AccessSpec, view: &SecurityView) -> sxv_xpath::CertifyContext {
    let dtd = spec.dtd();
    let graph = DtdGraph::new(dtd);
    let mut children: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for i in 0..graph.len() {
        let kids: BTreeSet<String> =
            graph.children(i).iter().map(|&c| graph.name_of(c).to_string()).collect();
        children.insert(graph.name_of(i).to_string(), kids);
    }
    let text_types: BTreeSet<String> = dtd
        .productions()
        .iter()
        .filter(|(_, p)| p.to_content().allows_text())
        .map(|(n, _)| n.clone())
        .collect();
    let acc = TypeAccessibility::compute(spec);
    let accessible = acc.can_acc.clone();
    let hideable = acc.can_inacc.clone();
    let inaccessible: BTreeSet<String> = hideable.difference(&accessible).cloned().collect();

    // σ-context propagation (as in `audit_view`, findings elided):
    // which document nodes can stand behind each view type? Dummy view
    // types expose their targets' labels under a renamed label — those
    // document types are emittable by design.
    let vgraph = ViewGraph::from_dtd(dtd);
    let mut ctx: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    ctx.insert(view.root().to_string(), BTreeSet::from([vgraph.root_node()]));
    let mut queue: VecDeque<String> = VecDeque::from([view.root().to_string()]);
    let mut dummy_visible: BTreeSet<String> = BTreeSet::new();
    let mut dummy_labels: BTreeSet<String> = BTreeSet::new();
    while let Some(a) = queue.pop_front() {
        let Some(content) = view.production(&a) else { continue };
        let parents: Vec<usize> = ctx.get(&a).into_iter().flatten().copied().collect();
        for b in content.child_types().into_iter().map(str::to_string) {
            let default_path = Path::label(&b);
            let p = view.sigma(&a, &b).unwrap_or(&default_path);
            let mut targets = BTreeSet::new();
            for &n in &parents {
                if let Some(img) = image(&vgraph, p, n) {
                    targets.extend(img.targets);
                }
            }
            if SecurityView::is_dummy(&b) && !targets.is_empty() {
                dummy_labels.insert(b.clone());
                for &t in &targets {
                    dummy_visible.insert(vgraph.label_of(t).to_string());
                }
            }
            let entry = ctx.entry(b.clone()).or_default();
            let before = entry.len();
            entry.extend(targets);
            if entry.len() != before {
                queue.push_back(b);
            }
        }
    }

    sxv_xpath::CertifyContext {
        root: dtd.root().to_string(),
        children,
        text_types,
        accessible,
        inaccessible,
        hideable,
        dummy_visible,
        dummy_labels,
    }
}

/// One finding of the view audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditFinding {
    /// σ(parent, child) selects nodes of a type that is never accessible
    /// under the specification — the view exposes hidden data.
    UnsoundSigma {
        /// View parent type.
        parent: String,
        /// View child type.
        child: String,
        /// The definitely-inaccessible document type reached by σ.
        target: String,
    },
    /// σ(parent, child) selects nodes whose label is not `child` (for a
    /// non-dummy child, view elements must carry the document label).
    LabelMismatch {
        /// View parent type.
        parent: String,
        /// View child type.
        child: String,
        /// The differently-labelled document type reached by σ.
        target: String,
    },
    /// An accessible document type has no (reachable) production in the
    /// view DTD — authorized data became invisible.
    Incomplete {
        /// The accessible document type missing from the view.
        name: String,
    },
    /// A view production exists but is unreachable from the view root.
    OrphanProduction {
        /// The orphaned view type.
        name: String,
    },
    /// σ(parent, child) selects nothing in any reachable context — the
    /// view child can never be populated.
    DeadSigma {
        /// View parent type.
        parent: String,
        /// View child type.
        child: String,
    },
    /// A dummy outside any choice whose production admits exactly one
    /// child type: the renaming hides the label but the expansion
    /// identifies the hidden element uniquely (Example 1.1-style
    /// inference).
    DummySingleExpansion {
        /// The dummy type.
        dummy: String,
        /// Its single possible child type.
        child: String,
    },
    /// A choice between two or more distinct dummies: the dummy labels
    /// are distinguishable, so observing one reveals which hidden branch
    /// of the original content was taken.
    DummyChoice {
        /// The view type whose production is the choice.
        parent: String,
        /// The distinguishable dummy alternatives.
        dummies: Vec<String>,
    },
    /// A dummy in starred position: the number of dummy children equals
    /// the number of hidden elements, leaking a hidden count.
    DummyCardinality {
        /// The view type referencing the dummy.
        parent: String,
        /// The starred dummy.
        dummy: String,
    },
}

impl AuditFinding {
    /// Findings that make the view unsafe to serve (soundness or
    /// completeness violations, Theorem 3.1). The rest are inference
    /// heuristics reported as warnings.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            AuditFinding::UnsoundSigma { .. }
                | AuditFinding::LabelMismatch { .. }
                | AuditFinding::Incomplete { .. }
        )
    }

    /// The artifact the finding is about, e.g. `σ(dept, bill)`.
    pub fn subject(&self) -> String {
        match self {
            AuditFinding::UnsoundSigma { parent, child, .. }
            | AuditFinding::LabelMismatch { parent, child, .. }
            | AuditFinding::DeadSigma { parent, child } => format!("σ({parent}, {child})"),
            AuditFinding::Incomplete { name } | AuditFinding::OrphanProduction { name } => {
                name.clone()
            }
            AuditFinding::DummySingleExpansion { dummy, .. } => dummy.clone(),
            AuditFinding::DummyChoice { parent, .. }
            | AuditFinding::DummyCardinality { parent, .. } => parent.clone(),
        }
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditFinding::UnsoundSigma { parent, child, target } => write!(
                f,
                "σ({parent}, {child}) reaches document type `{target}`, which is never \
                 accessible under the specification — the view leaks hidden data"
            ),
            AuditFinding::LabelMismatch { parent, child, target } => write!(
                f,
                "σ({parent}, {child}) reaches document type `{target}`; a non-dummy view child \
                 must select `{child}`-labelled nodes"
            ),
            AuditFinding::Incomplete { name } => write!(
                f,
                "document type `{name}` can be accessible but has no reachable production in \
                 the view DTD — authorized data is hidden"
            ),
            AuditFinding::OrphanProduction { name } => {
                write!(f, "view production `{name}` is unreachable from the view root")
            }
            AuditFinding::DeadSigma { parent, child } => write!(
                f,
                "σ({parent}, {child}) selects nothing in any reachable context; the view child \
                 can never be populated"
            ),
            AuditFinding::DummySingleExpansion { dummy, child } => write!(
                f,
                "dummy `{dummy}` has the single possible expansion `{child}`; the renaming \
                 hides a label without hiding which element is present"
            ),
            AuditFinding::DummyChoice { parent, dummies } => write!(
                f,
                "`{parent}` offers a choice between distinguishable dummies {}; observing the \
                 label reveals which hidden branch was taken",
                dummies.join(" + ")
            ),
            AuditFinding::DummyCardinality { parent, dummy } => write!(
                f,
                "`{parent}` contains `{dummy}*`; the dummy count equals the number of hidden \
                 elements, leaking a hidden cardinality"
            ),
        }
    }
}

/// Re-check a security view against its specification (see the module
/// docs). Findings with [`AuditFinding::is_error`] violate soundness or
/// completeness; the rest are inference warnings.
pub fn audit_view(spec: &AccessSpec, view: &SecurityView) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let acc = TypeAccessibility::compute(spec);
    let graph = ViewGraph::from_dtd(spec.dtd());

    // View-DTD reachability from the view root (over production edges).
    let mut view_reachable: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![view.root()];
    while let Some(a) = stack.pop() {
        if !view_reachable.insert(a) {
            continue;
        }
        if let Some(content) = view.production(a) {
            stack.extend(content.child_types());
        }
    }
    for (name, _) in view.productions() {
        if !view_reachable.contains(name.as_str()) {
            findings.push(AuditFinding::OrphanProduction { name: name.clone() });
        }
    }

    // Context propagation: which document-DTD nodes can stand behind each
    // view type? The root view element is the document root; children are
    // whatever their σ annotation selects from the parent's contexts.
    let mut ctx: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
    ctx.insert(view.root().to_string(), BTreeSet::from([graph.root_node()]));
    let mut queue: VecDeque<String> = VecDeque::from([view.root().to_string()]);
    let mut dead_sigma: BTreeSet<(String, String)> = BTreeSet::new();
    while let Some(a) = queue.pop_front() {
        let Some(content) = view.production(&a) else { continue };
        let parents: Vec<usize> = ctx.get(&a).into_iter().flatten().copied().collect();
        for b in content.child_types().into_iter().map(str::to_string) {
            // Hand-authored views may omit σ for "same label" edges.
            let default_path = Path::label(&b);
            let p = view.sigma(&a, &b).unwrap_or(&default_path);
            let mut targets = BTreeSet::new();
            for &n in &parents {
                if let Some(img) = image(&graph, p, n) {
                    targets.extend(img.targets);
                }
            }
            if targets.is_empty() {
                if !parents.is_empty() {
                    dead_sigma.insert((a.clone(), b.clone()));
                }
                continue;
            }
            for &t in &targets {
                let label = graph.label_of(t);
                if !SecurityView::is_dummy(&b) {
                    if label != b {
                        findings.push(AuditFinding::LabelMismatch {
                            parent: a.clone(),
                            child: b.clone(),
                            target: label.to_string(),
                        });
                    } else if acc.definitely_inaccessible(label) {
                        findings.push(AuditFinding::UnsoundSigma {
                            parent: a.clone(),
                            child: b.clone(),
                            target: label.to_string(),
                        });
                    }
                }
            }
            let entry = ctx.entry(b.clone()).or_default();
            let before = entry.len();
            entry.extend(targets);
            if entry.len() != before {
                queue.push_back(b);
            }
        }
    }
    findings.extend(
        dead_sigma.into_iter().map(|(parent, child)| AuditFinding::DeadSigma { parent, child }),
    );

    // Completeness: every possibly-accessible document type must have a
    // reachable view production (Fig. 5 emits exactly these).
    for name in acc.accessible_types() {
        if !view_reachable.contains(name) || view.production(name).is_none() {
            findings.push(AuditFinding::Incomplete { name: name.to_string() });
        }
    }

    // Dummy-inference heuristics over reachable productions.
    let mut in_choice: BTreeSet<String> = BTreeSet::new();
    for (name, content) in view.productions() {
        if !view_reachable.contains(name.as_str()) {
            continue;
        }
        if let ViewContent::Choice { alternatives, .. } = content {
            let dummies: Vec<String> =
                alternatives.iter().filter(|alt| SecurityView::is_dummy(alt)).cloned().collect();
            in_choice.extend(dummies.iter().cloned());
            let mut distinct = dummies.clone();
            distinct.dedup();
            if distinct.len() >= 2 {
                findings
                    .push(AuditFinding::DummyChoice { parent: name.clone(), dummies: distinct });
            }
        }
        for item in starred_children(content) {
            if SecurityView::is_dummy(item) {
                findings.push(AuditFinding::DummyCardinality {
                    parent: name.clone(),
                    dummy: item.to_string(),
                });
            }
        }
    }
    for (name, content) in view.productions() {
        if !view_reachable.contains(name.as_str())
            || !SecurityView::is_dummy(name)
            || in_choice.contains(name)
        {
            continue;
        }
        if let Some(child) = single_expansion(content) {
            findings.push(AuditFinding::DummySingleExpansion {
                dummy: name.clone(),
                child: child.to_string(),
            });
        }
    }
    findings
}

/// Child types occurring under a `*` in a production.
fn starred_children(content: &ViewContent) -> Vec<&str> {
    match content {
        ViewContent::Star(b) => vec![b],
        ViewContent::Seq(items) => items
            .iter()
            .filter_map(|i| match i {
                ViewItem::Many(b) => Some(b.as_str()),
                ViewItem::One(_) => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// The unique mandatory child type of a production, if its expansion is
/// fully determined (exactly one child, exactly once).
fn single_expansion(content: &ViewContent) -> Option<&str> {
    match content {
        ViewContent::Seq(items) => match items.as_slice() {
            [ViewItem::One(b)] => Some(b),
            _ => None,
        },
        ViewContent::Choice { alternatives, optional: false } => match alternatives.as_slice() {
            [b] => Some(b),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use std::collections::BTreeMap;
    use sxv_dtd::parse_dtd;

    const HOSPITAL: &str = r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#;

    /// The paper's Example 3.1 nurse specification.
    fn nurse() -> AccessSpec {
        let dtd = parse_dtd(HOSPITAL, "hospital").unwrap();
        AccessSpec::builder(&dtd)
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    #[test]
    fn type_accessibility_nurse() {
        let acc = TypeAccessibility::compute(&nurse());
        // Never accessible: clinicalTrial, test, trial, regular.
        for t in ["clinicalTrial", "test", "trial", "regular"] {
            assert!(acc.definitely_inaccessible(t), "{t}");
        }
        // Mixed: patientInfo occurs under dept (acc) and clinicalTrial (inacc → Y).
        assert!(acc.can_be_accessible("patientInfo"));
        // Always accessible: staffInfo, staff, doctor, nurse, dept, bill.
        for t in ["hospital", "dept", "staffInfo", "staff", "doctor", "nurse", "bill"] {
            assert!(acc.definitely_accessible(t), "{t}");
        }
        // name is reachable both under patient (acc) and doctor/nurse (acc) — always acc.
        assert!(acc.definitely_accessible("name"));
    }

    #[test]
    fn certify_context_from_nurse_spec() {
        let spec = nurse();
        let view = derive_view(&spec).unwrap();
        let ctx = certify_context(&spec, &view);
        assert_eq!(ctx.root, "hospital");
        assert!(ctx.children["dept"].contains("clinicalTrial"));
        assert!(ctx.text_types.contains("name") && !ctx.text_types.contains("patient"));
        assert!(ctx.accessible.contains("bill"), "allow override is emittable");
        assert!(ctx.inaccessible.contains("trial") && ctx.inaccessible.contains("clinicalTrial"));
        assert!(ctx.hideable.contains("trial"));
        // The nurse view renames the hidden treatment branches into
        // dummies; their σ-image types are emittable by design.
        assert!(!ctx.dummy_labels.is_empty(), "{:?}", ctx.dummy_labels);
        assert!(
            ctx.dummy_visible.contains("trial") || ctx.dummy_visible.contains("regular"),
            "{:?}",
            ctx.dummy_visible
        );
        assert!(ctx.emittable("bill") && !ctx.emittable("test"));
    }

    #[test]
    fn unannotated_spec_everything_accessible() {
        let dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a EMPTY>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let acc = TypeAccessibility::compute(&spec);
        assert!(acc.definitely_accessible("r"));
        assert!(acc.definitely_accessible("a"));
    }

    #[test]
    fn unreachable_type_in_neither_set() {
        let dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a EMPTY><!ELEMENT z EMPTY>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let acc = TypeAccessibility::compute(&spec);
        assert!(!acc.is_reachable("z"));
        assert!(!acc.definitely_inaccessible("z"), "unreachable ≠ denied");
    }

    #[test]
    fn derive_output_passes_audit_on_nurse() {
        let spec = nurse();
        let view = derive_view(&spec).unwrap();
        let findings = audit_view(&spec, &view);
        let errors: Vec<_> = findings.iter().filter(|f| f.is_error()).collect();
        assert!(errors.is_empty(), "derive output flagged: {errors:?}");
        // The nurse view's dummy1 + dummy2 choice is a known inference
        // surface — the auditor warns about it.
        assert!(
            findings.iter().any(|f| matches!(f, AuditFinding::DummyChoice { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn leaky_hand_view_is_unsound() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let mut sigma = BTreeMap::new();
        sigma.insert(("r".to_string(), "a".to_string()), sxv_xpath::parse("a").unwrap());
        sigma.insert(("r".to_string(), "b".to_string()), sxv_xpath::parse("b").unwrap());
        let view = SecurityView::new(
            "r".into(),
            vec![
                (
                    "r".into(),
                    ViewContent::Seq(vec![ViewItem::One("a".into()), ViewItem::One("b".into())]),
                ),
                ("a".into(), ViewContent::Str),
                ("b".into(), ViewContent::Str),
            ],
            sigma,
        );
        let findings = audit_view(&spec, &view);
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, AuditFinding::UnsoundSigma { target, .. } if target == "b")),
            "{findings:?}"
        );
    }

    #[test]
    fn incomplete_hand_view_detected() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        // Hand view forgets `b` even though everything is accessible.
        let mut sigma = BTreeMap::new();
        sigma.insert(("r".to_string(), "a".to_string()), sxv_xpath::parse("a").unwrap());
        let view = SecurityView::new(
            "r".into(),
            vec![
                ("r".into(), ViewContent::Seq(vec![ViewItem::One("a".into())])),
                ("a".into(), ViewContent::Str),
            ],
            sigma,
        );
        let findings = audit_view(&spec, &view);
        assert!(
            findings.iter().any(|f| matches!(f, AuditFinding::Incomplete { name } if name == "b")),
            "{findings:?}"
        );
    }

    #[test]
    fn label_mismatch_detected() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        // σ(r, a) points at b: the view claims `a` but serves `b` data.
        let mut sigma = BTreeMap::new();
        sigma.insert(("r".to_string(), "a".to_string()), sxv_xpath::parse("b").unwrap());
        let view = SecurityView::new(
            "r".into(),
            vec![
                ("r".into(), ViewContent::Seq(vec![ViewItem::One("a".into())])),
                ("a".into(), ViewContent::Str),
            ],
            sigma,
        );
        let findings = audit_view(&spec, &view);
        assert!(
            findings.iter().any(|f| matches!(f, AuditFinding::LabelMismatch { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn dead_sigma_and_orphan_detected() {
        let dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let mut sigma = BTreeMap::new();
        // `ghost` does not exist under r.
        sigma.insert(("r".to_string(), "a".to_string()), sxv_xpath::parse("ghost/a").unwrap());
        let view = SecurityView::new(
            "r".into(),
            vec![
                ("r".into(), ViewContent::Seq(vec![ViewItem::One("a".into())])),
                ("a".into(), ViewContent::Str),
                ("z".into(), ViewContent::Empty),
            ],
            sigma,
        );
        let findings = audit_view(&spec, &view);
        assert!(
            findings.iter().any(|f| matches!(f, AuditFinding::DeadSigma { .. })),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| matches!(f, AuditFinding::OrphanProduction { name } if name == "z")),
            "{findings:?}"
        );
        // `a` never gets a context, so completeness must not double-report
        // it — it *is* reachable in the view DTD.
        assert!(!findings.iter().any(|f| f.is_error()), "{findings:?}");
    }

    #[test]
    fn starred_dummy_cardinality_detected() {
        // r → a*, a hidden with an accessible choice of children ⇒ derive
        // must dummy-rename (no short-cut for a choice): r → dummy1*. The
        // count of dummies reveals the count of hidden a's.
        let dtd = parse_dtd(
            "<!ELEMENT r (a*)><!ELEMENT a (c | d)><!ELEMENT c (#PCDATA)><!ELEMENT d (#PCDATA)>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .deny("r", "a")
            .allow("a", "c")
            .allow("a", "d")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let findings = audit_view(&spec, &view);
        assert!(!findings.iter().any(|f| f.is_error()), "{findings:?}");
        assert!(
            findings.iter().any(|f| matches!(f, AuditFinding::DummyCardinality { .. })),
            "{findings:?}"
        );
    }

    #[test]
    fn finding_display_and_subject() {
        let f = AuditFinding::UnsoundSigma {
            parent: "r".into(),
            child: "b".into(),
            target: "b".into(),
        };
        assert!(f.is_error());
        assert_eq!(f.subject(), "σ(r, b)");
        assert!(f.to_string().contains("never"));
        let w = AuditFinding::DummyChoice {
            parent: "t".into(),
            dummies: vec!["dummy1".into(), "dummy2".into()],
        };
        assert!(!w.is_error());
        assert!(w.to_string().contains("dummy1 + dummy2"));
    }
}

//! The §6 "naive" baseline: element-level security annotations.
//!
//! The paper's comparison approach does not use the DTD for rewriting.
//! Instead it
//!
//! 1. stores each element's accessibility in an `accessibility` attribute
//!    on the document itself ([`NaiveBaseline::annotate`]), and
//! 2. rewrites a view query with two rules ([`NaiveBaseline::rewrite`]):
//!    every child axis is widened to a descendant axis (a view edge may
//!    stand for a whole document path), and `[@accessibility='1']` is
//!    appended to the result step.
//!
//! Footnote 3 of the paper: rule 2 is only sound when the DTD has unique
//! element names (no label reachable along two incomparable paths with
//! different accessibility). [`NaiveBaseline::rewrite`] implements exactly
//! the paper's rules; its performance cost — scanning whole subtrees for
//! every widened axis and checking an attribute on every candidate — is
//! what Table 1 measures against the DTD-aware rewriting.

use crate::accessibility;
use crate::spec::AccessSpec;
use sxv_xml::Document;
use sxv_xpath::{Path, Qualifier};

/// Attribute name used for element-level annotations.
pub const ACCESS_ATTR: &str = "accessibility";

/// The naive element-annotation baseline.
pub struct NaiveBaseline;

impl NaiveBaseline {
    /// Produce a copy of `doc` where every element carries
    /// `accessibility="1"` or `"0"` according to `spec` (the baseline's
    /// offline preparation step).
    pub fn annotate(spec: &AccessSpec, doc: &Document) -> Document {
        let access = accessibility::compute(spec, doc);
        let mut out = doc.clone();
        for id in doc.all_ids() {
            if doc.is_element(id) {
                let flag = if access.is_accessible(id) { "1" } else { "0" };
                out.set_attribute(id, ACCESS_ATTR, flag).expect("element node accepts attributes");
            }
        }
        out
    }

    /// Rewrite a view query with the paper's two rules.
    pub fn rewrite(p: &Path) -> Path {
        Path::filter(widen(p), Qualifier::AttrEq(ACCESS_ATTR.to_string(), "1".to_string()))
    }
}

/// Rule 2: replace each child axis with the descendant axis.
fn widen(p: &Path) -> Path {
    match p {
        Path::Empty | Path::EmptySet | Path::Doc => p.clone(),
        // text() widens like any other child step; note that the trailing
        // accessibility filter cannot apply to text nodes (element-level
        // annotations), so the baseline under-returns on text queries — a
        // real limitation of the element-annotation model.
        Path::Label(_) | Path::Wildcard | Path::Text => Path::descendant(p.clone()),
        Path::Step(a, b) => Path::step(widen(a), widen(b)),
        // Already a descendant axis: widen only below it, and collapse the
        // `//(//x)` the inner widening would produce.
        Path::Descendant(inner) => match widen(inner) {
            Path::Descendant(x) => Path::descendant(*x),
            other => Path::descendant(other),
        },
        // Widening inside a closure body keeps the closure semantics
        // sound under the view-edge-to-document-path mapping.
        Path::Closure(inner) => Path::closure(widen(inner)),
        Path::Union(a, b) => Path::union(widen(a), widen(b)),
        Path::Filter(base, q) => Path::filter(widen(base), widen_qual(q)),
    }
}

fn widen_qual(q: &Qualifier) -> Qualifier {
    match q {
        Qualifier::Path(p) => Qualifier::path(widen(p)),
        Qualifier::Eq(p, c) => Qualifier::Eq(widen(p), c.clone()),
        Qualifier::And(a, b) => Qualifier::and(widen_qual(a), widen_qual(b)),
        Qualifier::Or(a, b) => Qualifier::or(widen_qual(a), widen_qual(b)),
        Qualifier::Not(inner) => Qualifier::not(widen_qual(inner)),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::{eval_at_root, parse};

    #[test]
    fn rewriting_rules_match_paper_q1() {
        // Q1: //buyer-info/contact-info →
        //     //buyer-info//contact-info[@accessibility="1"]
        let p = parse("//buyer-info/contact-info").unwrap();
        let n = NaiveBaseline::rewrite(&p);
        assert_eq!(n.to_string(), "(//buyer-info//contact-info)[@accessibility='1']");
    }

    #[test]
    fn widening_inside_qualifiers() {
        let p = parse("//buyer-info[company-id and contact-info]").unwrap();
        let n = NaiveBaseline::rewrite(&p);
        let s = n.to_string();
        assert!(s.contains("//company-id"), "{s}");
        assert!(s.contains("//contact-info"), "{s}");
        assert!(s.ends_with("[@accessibility='1']"), "{s}");
    }

    #[test]
    fn no_double_descendant() {
        let p = parse("//a//b").unwrap();
        let n = NaiveBaseline::rewrite(&p);
        assert_eq!(n.to_string(), "(//a//b)[@accessibility='1']");
    }

    #[test]
    fn annotation_flags_elements() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let doc = parse_xml("<r><a>pub</a><b>sec</b></r>").unwrap();
        let annotated = NaiveBaseline::annotate(&spec, &doc);
        let root = annotated.root().unwrap();
        assert_eq!(annotated.attribute(root, ACCESS_ATTR), Some("1"));
        let a = annotated.children(root)[0];
        let b = annotated.children(root)[1];
        assert_eq!(annotated.attribute(a, ACCESS_ATTR), Some("1"));
        assert_eq!(annotated.attribute(b, ACCESS_ATTR), Some("0"));
        // The original document is untouched.
        assert_eq!(doc.attribute(root, ACCESS_ATTR), None);
    }

    #[test]
    fn naive_answers_filter_inaccessible() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let doc = parse_xml("<r><a>pub</a><b>sec</b></r>").unwrap();
        let annotated = NaiveBaseline::annotate(&spec, &doc);
        let allowed = eval_at_root(&annotated, &NaiveBaseline::rewrite(&parse("a").unwrap()));
        assert_eq!(allowed.len(), 1);
        let blocked = eval_at_root(&annotated, &NaiveBaseline::rewrite(&parse("b").unwrap()));
        assert!(blocked.is_empty());
        let wild = eval_at_root(&annotated, &NaiveBaseline::rewrite(&parse("*").unwrap()));
        assert_eq!(wild.len(), 1, "only the accessible element");
    }
}

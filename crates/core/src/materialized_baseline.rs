//! The materialized-view baseline the paper argues against.
//!
//! Related work ([8, 9] in the paper — Damiani et al.) enforces access
//! control by *materializing* one view per user group: query evaluation
//! is then direct (and fast), but the view must be kept in sync with the
//! document, which the paper calls "quite complex and computationally
//! expensive", and the cost multiplies across user groups.
//!
//! [`MaterializedBaseline`] implements that strategy faithfully enough to
//! measure the trade-off: it caches the materialized view (built with the
//! §3.3 semantics) and evaluates queries directly over it, translating
//! result nodes back to document nodes; any document update invalidates
//! the cache and forces re-materialization. The `maintenance` benchmark
//! compares it against the virtual (rewrite-based) engine across
//! query/update mixes.

use crate::error::Result;
use crate::spec::AccessSpec;
use crate::view::def::SecurityView;
use crate::view::materialize::{materialize, Materialized};
use sxv_xml::{Document, NodeId};
use sxv_xpath::{eval_at_root, Path};

/// Per-group materialized-view query engine (the [8, 9] strategy).
pub struct MaterializedBaseline<'a> {
    spec: &'a AccessSpec,
    view: &'a SecurityView,
    cache: Option<Materialized>,
    rebuilds: usize,
}

impl<'a> MaterializedBaseline<'a> {
    /// Bind a specification and its derived view; nothing is built yet.
    pub fn new(spec: &'a AccessSpec, view: &'a SecurityView) -> Self {
        MaterializedBaseline { spec, view, cache: None, rebuilds: 0 }
    }

    /// Signal that the document changed: the cached view is stale.
    pub fn invalidate(&mut self) {
        self.cache = None;
    }

    /// Number of (re-)materializations performed so far.
    pub fn rebuild_count(&self) -> usize {
        self.rebuilds
    }

    /// Answer a view query by evaluating it directly over the (cached)
    /// materialized view; results map back to document nodes.
    pub fn answer(&mut self, doc: &Document, p: &Path) -> Result<Vec<NodeId>> {
        if self.cache.is_none() {
            self.cache = Some(materialize(self.spec, self.view, doc)?);
            self.rebuilds += 1;
        }
        let m = self.cache.as_ref().expect("just ensured");
        Ok(m.sources_of(&eval_at_root(&m.doc, p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::parse;

    fn setup() -> (AccessSpec, SecurityView, Document) {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml("<r><a>pub</a><b>sec</b></r>").unwrap();
        (spec, view, doc)
    }

    #[test]
    fn answers_match_virtual_engine() {
        let (spec, view, doc) = setup();
        let mut mat = MaterializedBaseline::new(&spec, &view);
        let engine = crate::engine::SecureEngine::new(&spec, &view);
        for q in ["//a", "//b", "*", "a"] {
            let p = parse(q).unwrap();
            assert_eq!(mat.answer(&doc, &p).unwrap(), engine.answer(&doc, &p).unwrap(), "{q}");
        }
    }

    #[test]
    fn cache_reused_until_invalidated() {
        let (spec, view, doc) = setup();
        let mut mat = MaterializedBaseline::new(&spec, &view);
        let p = parse("//a").unwrap();
        mat.answer(&doc, &p).unwrap();
        mat.answer(&doc, &p).unwrap();
        assert_eq!(mat.rebuild_count(), 1, "second query hits the cache");
        mat.invalidate();
        mat.answer(&doc, &p).unwrap();
        assert_eq!(mat.rebuild_count(), 2);
    }
}

//! DTD-derived cardinality estimates for the query planner.
//!
//! The engine plans queries before any document arrives, so it cannot
//! read occurrence lists from a [`sxv_xml::DocIndex`]. What it does have
//! is the document DTD: paper normal form gives every element type a
//! production (`str`, `ε`, sequence, choice, star), from which expected
//! per-label element counts propagate root-down — a sequence child
//! occurs once per parent, a choice child `1/n` times, a starred child
//! [`STAR_BRANCH`] times. The resulting label table feeds
//! [`CostModel::from_estimates`], giving the planner the same shape of
//! statistics a real index would, just approximate.

use std::collections::HashMap;
use sxv_dtd::{Dtd, NormalContent};
use sxv_xpath::CostModel;

/// Assumed repetitions of a `B*` child — matches the small synthetic
/// documents of the benchmark generator closely enough to order plans.
pub const STAR_BRANCH: f64 = 4.0;

/// Ceiling on any propagated estimate; recursive DTDs would otherwise
/// diverge (each unfolding pass multiplies by the cycle's fan-out).
const MAX_EST: f64 = 1e9;

/// Passes of root-down propagation: exact for DAG DTDs up to this depth,
/// a bounded unfolding for recursive ones.
const MAX_PASSES: usize = 24;

fn child_weights(content: &NormalContent) -> Vec<(&str, f64)> {
    match content {
        NormalContent::Str | NormalContent::Empty => Vec::new(),
        NormalContent::Seq(names) => names.iter().map(|n| (n.as_str(), 1.0)).collect(),
        NormalContent::Choice(names) => {
            let w = 1.0 / names.len().max(1) as f64;
            names.iter().map(|n| (n.as_str(), w)).collect()
        }
        NormalContent::Star(name) => vec![(name.as_str(), STAR_BRANCH)],
    }
}

/// Expected per-label element counts (and text-node total) for documents
/// conforming to `dtd`, packaged as a planner [`CostModel`].
/// `has_index` declares whether execution will have a structural index —
/// the engine's serving path passes `true`.
///
/// Estimates are computed by fixed-point iteration over the production
/// list in declaration order, so the result is deterministic for a given
/// DTD (no hash-map iteration order leaks into the numbers).
pub fn dtd_cost_model(dtd: &Dtd, has_index: bool) -> CostModel {
    let productions = dtd.productions();
    let n = productions.len();
    let slot: HashMap<&str, usize> =
        productions.iter().enumerate().map(|(i, (name, _))| (name.as_str(), i)).collect();
    let mut est = vec![0.0f64; n];
    if let Some(&r) = slot.get(dtd.root()) {
        est[r] = 1.0;
    }
    // est_{k+1} = root + est_k · W accumulates expected counts over all
    // root-to-type paths of length ≤ k+1; exact once k reaches the DAG
    // depth, clamped for recursive DTDs.
    for _ in 0..MAX_PASSES.min(n.max(1)) {
        let mut next = vec![0.0f64; n];
        if let Some(&r) = slot.get(dtd.root()) {
            next[r] = 1.0;
        }
        for (i, (_, content)) in productions.iter().enumerate() {
            if est[i] <= 0.0 {
                continue;
            }
            for (child, w) in child_weights(content) {
                if let Some(&j) = slot.get(child) {
                    next[j] = (next[j] + est[i] * w).min(MAX_EST);
                }
            }
        }
        if next == est {
            break;
        }
        est = next;
    }
    let texts: f64 = productions
        .iter()
        .enumerate()
        .filter(|(_, (_, c))| matches!(c, NormalContent::Str))
        .map(|(i, _)| est[i])
        .sum();
    let labels = productions.iter().enumerate().map(|(i, (name, _))| (name.clone(), est[i]));
    CostModel::from_estimates(labels, texts, has_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xpath::{compile, parse, PlanPolicy};

    fn hospital_dtd() -> Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (patientInfo, staff)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    #[test]
    fn estimates_follow_dtd_structure() {
        let cost = dtd_cost_model(&hospital_dtd(), true);
        // Star children multiply, sequence children carry through, choice
        // children split: 4 depts → 16 patients → 16 wardNos, and names
        // come from patients plus (one of) doctor/nurse per dept.
        let plan_patient = compile(&parse("//patient").unwrap(), PlanPolicy::Auto, &cost).summary();
        let plan_missing =
            compile(&parse("//nosuchlabel").unwrap(), PlanPolicy::Auto, &cost).summary();
        assert!(plan_patient.est_rows >= 8, "patients should be plural: {plan_patient:?}");
        assert_eq!(plan_missing.est_rows, 0, "labels outside the DTD cannot occur");
    }

    #[test]
    fn deterministic_across_builds() {
        let a = dtd_cost_model(&hospital_dtd(), true);
        let b = dtd_cost_model(&hospital_dtd(), true);
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_dtd_terminates_with_capped_estimates() {
        let dtd = parse_dtd(
            r#"
<!ELEMENT part (part*)>
"#,
            "part",
        )
        .unwrap();
        let cost = dtd_cost_model(&dtd, true);
        let s = compile(&parse("//part").unwrap(), PlanPolicy::Auto, &cost).summary();
        // Clamped to the model's total-node ceiling, not infinity.
        assert!(s.est_rows > 0);
    }
}

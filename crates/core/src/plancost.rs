//! DTD-derived cardinality estimates for the query planner.
//!
//! The engine plans queries before any document arrives, so it cannot
//! read occurrence lists from a [`sxv_xml::DocIndex`]. What it does have
//! is the document DTD: paper normal form gives every element type a
//! production (`str`, `ε`, sequence, choice, star), from which expected
//! per-label element counts propagate root-down — a sequence child
//! occurs once per parent, a choice child `1/n` times, a starred child
//! [`STAR_BRANCH`] times. The resulting label table feeds
//! [`CostModel::from_estimates`], giving the planner the same shape of
//! statistics a real index would, just approximate.

use std::collections::HashMap;
use sxv_dtd::{Dtd, NormalContent};
use sxv_xpath::CostModel;

/// Assumed repetitions of a `B*` child — matches the small synthetic
/// documents of the benchmark generator closely enough to order plans.
pub const STAR_BRANCH: f64 = 4.0;

/// Assumed continuation ratio of one recursion level: along an edge that
/// participates in a production cycle, each additional nesting level is
/// taken to be half as populated as the one above. With every cycle
/// edge damped below 1 the root-down propagation becomes a convergent
/// geometric series, so recursive DTDs get a finite *fixpoint*
/// cardinality (`est / (1 - r)` in the single-cycle case) instead of a
/// divergent unfolding that slams into an arbitrary ceiling.
pub const RECURSE_DECAY: f64 = 0.5;

/// Ceiling on any propagated estimate — a backstop for pathological
/// DTDs whose parallel cycle paths still sum to a gain ≥ 1.
const MAX_EST: f64 = 1e9;

/// Upper bound on propagation passes. DAG DTDs converge in at most
/// their depth; damped cycles converge geometrically; this cap only
/// matters for the pathological gain ≥ 1 case.
const MAX_PASSES: usize = 256;

/// Convergence tolerance for the fixpoint iteration.
const TOLERANCE: f64 = 1e-6;

fn child_weights(content: &NormalContent) -> Vec<(&str, f64)> {
    match content {
        NormalContent::Str | NormalContent::Empty => Vec::new(),
        NormalContent::Seq(names) => names.iter().map(|n| (n.as_str(), 1.0)).collect(),
        NormalContent::Choice(names) => {
            let w = 1.0 / names.len().max(1) as f64;
            names.iter().map(|n| (n.as_str(), w)).collect()
        }
        NormalContent::Star(name) => vec![(name.as_str(), STAR_BRANCH)],
    }
}

/// For each production slot, the set of slots reachable through child
/// edges (used to find edges that participate in a cycle).
fn reachability(adj: &[Vec<usize>]) -> Vec<Vec<bool>> {
    let n = adj.len();
    let mut reach = vec![vec![false; n]; n];
    for (start, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![start];
        while let Some(x) = stack.pop() {
            for &y in &adj[x] {
                if !row[y] {
                    row[y] = true;
                    stack.push(y);
                }
            }
        }
    }
    reach
}

/// Expected per-label element counts (and text-node total) for documents
/// conforming to `dtd`, packaged as a planner [`CostModel`].
/// `has_index` declares whether execution will have a structural index —
/// the engine's serving path passes `true`.
///
/// Estimates solve `est = root + est · W` by fixed-point iteration over
/// the production list in declaration order, so the result is
/// deterministic for a given DTD (no hash-map iteration order leaks
/// into the numbers). Edges that close a production cycle are damped to
/// [`RECURSE_DECAY`] so the iteration converges to the geometric-series
/// fixpoint instead of unfolding the cycle to a clamp.
pub fn dtd_cost_model(dtd: &Dtd, has_index: bool) -> CostModel {
    let productions = dtd.productions();
    let n = productions.len();
    let slot: HashMap<&str, usize> =
        productions.iter().enumerate().map(|(i, (name, _))| (name.as_str(), i)).collect();
    // Per-slot weighted child edges, with cycle edges damped: an edge
    // i→j is in a cycle iff j reaches i (including i == j self-loops).
    let adj: Vec<Vec<usize>> = productions
        .iter()
        .map(|(_, content)| {
            child_weights(content).iter().filter_map(|(c, _)| slot.get(c).copied()).collect()
        })
        .collect();
    let reach = reachability(&adj);
    let edges: Vec<Vec<(usize, f64)>> = productions
        .iter()
        .enumerate()
        .map(|(i, (_, content))| {
            child_weights(content)
                .iter()
                .filter_map(|&(child, w)| {
                    let j = *slot.get(child)?;
                    let damped = if reach[j][i] { w.min(RECURSE_DECAY) } else { w };
                    Some((j, damped))
                })
                .collect()
        })
        .collect();
    let mut est = vec![0.0f64; n];
    if let Some(&r) = slot.get(dtd.root()) {
        est[r] = 1.0;
    }
    // est_{k+1} = root + est_k · W accumulates expected counts over all
    // root-to-type walks of length ≤ k+1; exact once k reaches the DAG
    // depth, geometrically convergent through damped cycles.
    for _ in 0..MAX_PASSES {
        let mut next = vec![0.0f64; n];
        if let Some(&r) = slot.get(dtd.root()) {
            next[r] = 1.0;
        }
        for (i, out) in edges.iter().enumerate() {
            if est[i] <= 0.0 {
                continue;
            }
            for &(j, w) in out {
                next[j] = (next[j] + est[i] * w).min(MAX_EST);
            }
        }
        let converged =
            next.iter().zip(&est).all(|(a, b)| (a - b).abs() <= TOLERANCE * b.abs().max(1.0));
        est = next;
        if converged {
            break;
        }
    }
    let texts: f64 = productions
        .iter()
        .enumerate()
        .filter(|(_, (_, c))| matches!(c, NormalContent::Str))
        .map(|(i, _)| est[i])
        .sum();
    let labels = productions.iter().enumerate().map(|(i, (name, _))| (name.clone(), est[i]));
    CostModel::from_estimates(labels, texts, has_index)
}

/// Patch observed per-label cardinalities (runtime feedback from a
/// profiled execution) into an existing model — the input to the
/// engine's adaptive recompile when observed rows diverge from the
/// static DTD estimates. Thin wrapper over [`CostModel::calibrated`] so
/// the feedback path reads as a plancost concern: static estimates in,
/// observed rows folded back, one recalibrated model out.
pub fn calibrate(cost: &CostModel, observed: impl IntoIterator<Item = (String, u64)>) -> CostModel {
    cost.calibrated(observed.into_iter().map(|(l, n)| (l, n as f64)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;
    use sxv_xpath::{compile, parse, PlanPolicy};

    fn hospital_dtd() -> Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (patientInfo, staff)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    #[test]
    fn estimates_follow_dtd_structure() {
        let cost = dtd_cost_model(&hospital_dtd(), true);
        // Star children multiply, sequence children carry through, choice
        // children split: 4 depts → 16 patients → 16 wardNos, and names
        // come from patients plus (one of) doctor/nurse per dept.
        let plan_patient = compile(&parse("//patient").unwrap(), PlanPolicy::Auto, &cost).summary();
        let plan_missing =
            compile(&parse("//nosuchlabel").unwrap(), PlanPolicy::Auto, &cost).summary();
        assert!(plan_patient.est_rows >= 8, "patients should be plural: {plan_patient:?}");
        assert_eq!(plan_missing.est_rows, 0, "labels outside the DTD cannot occur");
    }

    #[test]
    fn deterministic_across_builds() {
        let a = dtd_cost_model(&hospital_dtd(), true);
        let b = dtd_cost_model(&hospital_dtd(), true);
        assert_eq!(a, b);
    }

    #[test]
    fn recursive_dtd_converges_to_geometric_fixpoint() {
        let dtd = parse_dtd(
            r#"
<!ELEMENT part (part*)>
"#,
            "part",
        )
        .unwrap();
        let cost = dtd_cost_model(&dtd, true);
        let s = compile(&parse("//part").unwrap(), PlanPolicy::Auto, &cost).summary();
        // The self-loop damps to RECURSE_DECAY, so the fixpoint is the
        // geometric series 1/(1 - 0.5) = 2 parts expected — a small
        // finite number, not a divergent unfolding hitting the clamp.
        assert!(s.est_rows >= 1, "{s:?}");
        assert!(s.est_rows <= 4, "recursive estimate must stay near the fixpoint: {s:?}");
    }

    #[test]
    fn cycle_damping_leaves_acyclic_regions_exact() {
        // A recursive region (part) hanging off an acyclic spine: the
        // spine's estimates keep their exact DAG propagation while the
        // cycle converges instead of clamping.
        let dtd = parse_dtd(
            r#"
<!ELEMENT bom (assembly*)>
<!ELEMENT assembly (part)>
<!ELEMENT part (part*, name)>
<!ELEMENT name (#PCDATA)>
"#,
            "bom",
        )
        .unwrap();
        let cost = dtd_cost_model(&dtd, true);
        let assemblies =
            compile(&parse("//assembly").unwrap(), PlanPolicy::Auto, &cost).summary().est_rows;
        assert_eq!(assemblies, 4, "starred spine child keeps the exact STAR_BRANCH estimate");
        let parts = compile(&parse("//part").unwrap(), PlanPolicy::Auto, &cost).summary().est_rows;
        // 4 seed parts, doubled by the damped self-loop fixpoint.
        assert!((4..=16).contains(&parts), "parts estimate should be finite and plural: {parts}");
        let names = compile(&parse("//name").unwrap(), PlanPolicy::Auto, &cost).summary().est_rows;
        assert!(names >= parts, "every part carries a name: {names} < {parts}");
    }
}

//! Access specifications — §3.2 of the paper.
//!
//! An access specification `S = (D, ann)` extends a document DTD `D` with a
//! partial map `ann(A, B) ∈ {Y, [q], N}` over parent→child DTD edges:
//!
//! * `Y` — the `B` children of `A` elements are accessible;
//! * `[q]` — conditionally accessible (XPath qualifier, evaluated at the
//!   `B` element);
//! * `N` — inaccessible.
//!
//! Unannotated edges inherit the parent's accessibility; explicit
//! annotations override it. The root is annotated `Y` by default.
//! Qualifiers may refer to `$parameters` (e.g. the paper's `$wardNo`),
//! bound per user class via [`AccessSpecBuilder::bind`].

use crate::error::{Error, Result};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use sxv_dtd::Dtd;
use sxv_xpath::{Path, Qualifier};

/// A security annotation on one DTD edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annotation {
    /// `Y` — accessible.
    Allow,
    /// `N` — inaccessible.
    Deny,
    /// `[q]` — conditionally accessible.
    Cond(Qualifier),
}

impl fmt::Display for Annotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Annotation::Allow => write!(f, "Y"),
            Annotation::Deny => write!(f, "N"),
            Annotation::Cond(q) => write!(f, "[{q}]"),
        }
    }
}

/// An access specification `S = (D, ann)`.
#[derive(Debug, Clone)]
pub struct AccessSpec {
    dtd: Dtd,
    /// `(parent, child) → annotation`, qualifiers with parameters already
    /// substituted.
    ann: BTreeMap<(String, String), Annotation>,
    /// `(element, attribute) → annotation` — attribute-level access
    /// control (the paper's "attributes can be easily incorporated").
    /// Only `Y`/`N`; unannotated attributes inherit their element.
    attr_ann: BTreeMap<(String, String), Annotation>,
}

impl AccessSpec {
    /// Start building a specification over a document DTD.
    pub fn builder(dtd: &Dtd) -> AccessSpecBuilder {
        AccessSpecBuilder {
            dtd: dtd.clone(),
            ann: BTreeMap::new(),
            attr_ann: BTreeMap::new(),
            params: HashMap::new(),
            errors: Vec::new(),
            keep_unbound: false,
        }
    }

    /// Parse the paper's textual annotation syntax (Example 3.1), plus
    /// attribute-level rules (`@`-prefixed child):
    ///
    /// ```text
    /// # comments and blank lines are skipped
    /// ann(hospital, dept) = [*/patient/wardNo=$wardNo]
    /// ann(dept, clinicalTrial) = N
    /// ann(clinicalTrial, patientInfo) = Y
    /// ann(account, @rating) = N
    /// ```
    pub fn parse(dtd: &Dtd, text: &str, params: &[(&str, &str)]) -> Result<AccessSpec> {
        let mut builder = AccessSpec::builder(dtd);
        for (name, value) in params {
            builder = builder.bind(*name, *value);
        }
        for rule in parse_spec_rules(text)? {
            builder = builder.apply_raw(&rule)?;
        }
        builder.build()
    }

    /// The document DTD `D`.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// The annotation on the `(parent, child)` edge, if explicitly defined.
    pub fn annotation(&self, parent: &str, child: &str) -> Option<&Annotation> {
        self.ann.get(&(parent.to_string(), child.to_string()))
    }

    /// The annotation on an `(element, attribute)` pair, if explicit.
    pub fn attribute_annotation(&self, elem: &str, attr: &str) -> Option<&Annotation> {
        self.attr_ann.get(&(elem.to_string(), attr.to_string()))
    }

    /// Is the attribute visible on (accessible instances of) `elem`?
    pub fn attribute_visible(&self, elem: &str, attr: &str) -> bool {
        !matches!(self.attribute_annotation(elem, attr), Some(Annotation::Deny))
    }

    /// All explicit annotations.
    pub fn annotations(&self) -> impl Iterator<Item = (&str, &str, &Annotation)> {
        self.ann.iter().map(|((p, c), a)| (p.as_str(), c.as_str(), a))
    }

    /// Number of explicit annotations.
    pub fn len(&self) -> usize {
        self.ann.len()
    }

    /// True iff no edges are explicitly annotated (everything accessible).
    pub fn is_empty(&self) -> bool {
        self.ann.is_empty()
    }
}

/// The right-hand side of one raw specification line, before edge
/// validation or parameter substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawValue {
    /// `Y`.
    Allow,
    /// `N`.
    Deny,
    /// `[q]` — the qualifier text between the brackets, unparsed.
    Cond(String),
}

/// One syntactically valid `ann(parent, child) = …` line. The `child` is
/// `@`-prefixed for attribute rules. Produced by [`parse_spec_rules`];
/// consumers (the linter) can inspect rules that the strict
/// [`AccessSpec::parse`] would reject for referencing unknown edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRule {
    /// 1-based source line.
    pub line: usize,
    /// Parent element type.
    pub parent: String,
    /// Child element type, or `@attribute`.
    pub child: String,
    /// The annotation value.
    pub value: RawValue,
}

impl RawRule {
    /// True iff this is an `ann(elem, @attr)` rule.
    pub fn is_attribute(&self) -> bool {
        self.child.starts_with('@')
    }
}

/// Parse specification text into raw rules — syntax only, no DTD
/// validation and no `$parameter` substitution.
pub fn parse_spec_rules(text: &str) -> Result<Vec<RawRule>> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let err =
            |message: &str| Error::SpecParse { line: lineno + 1, message: message.to_string() };
        let rest = line
            .strip_prefix("ann(")
            .ok_or_else(|| err("expected `ann(parent, child) = Y|N|[q]`"))?;
        let (args, value) = rest.split_once(')').ok_or_else(|| err("expected ')'"))?;
        let (parent, child) = args.split_once(',').ok_or_else(|| err("expected ','"))?;
        let value = value.trim().strip_prefix('=').ok_or_else(|| err("expected '='"))?;
        let parent = parent.trim();
        let child = child.trim();
        let value = value.trim();
        let value = if child.starts_with('@') {
            match value {
                "Y" => RawValue::Allow,
                "N" => RawValue::Deny,
                _ => return Err(err("attribute annotations must be Y or N")),
            }
        } else {
            match value {
                "Y" => RawValue::Allow,
                "N" => RawValue::Deny,
                q if q.starts_with('[') && q.ends_with(']') => {
                    RawValue::Cond(q[1..q.len() - 1].to_string())
                }
                _ => return Err(err("annotation must be Y, N, or [qualifier]")),
            }
        };
        out.push(RawRule {
            line: lineno + 1,
            parent: parent.to_string(),
            child: child.to_string(),
            value,
        });
    }
    Ok(out)
}

/// Builder for [`AccessSpec`] (errors are accumulated and reported at
/// [`AccessSpecBuilder::build`], so chains stay ergonomic).
pub struct AccessSpecBuilder {
    dtd: Dtd,
    ann: BTreeMap<(String, String), Annotation>,
    attr_ann: BTreeMap<(String, String), Annotation>,
    params: HashMap<String, String>,
    errors: Vec<Error>,
    keep_unbound: bool,
}

impl AccessSpecBuilder {
    /// Bind a `$parameter` value used in conditional annotations.
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(name.into(), value.into());
        self
    }

    /// Annotate `(parent, child)` with `Y`.
    pub fn allow(self, parent: &str, child: &str) -> Self {
        self.set(parent, child, Annotation::Allow)
    }

    /// Annotate `(parent, child)` with `N`.
    pub fn deny(self, parent: &str, child: &str) -> Self {
        self.set(parent, child, Annotation::Deny)
    }

    /// Hide an attribute of an element type (attribute-level `N`).
    pub fn deny_attr(self, elem: &str, attr: &str) -> Self {
        self.set_attr(elem, attr, Annotation::Deny)
    }

    /// Explicitly expose an attribute (attribute-level `Y`; the default
    /// is to inherit the element's accessibility).
    pub fn allow_attr(self, elem: &str, attr: &str) -> Self {
        self.set_attr(elem, attr, Annotation::Allow)
    }

    fn set_attr(mut self, elem: &str, attr: &str, ann: Annotation) -> Self {
        let declared = self.dtd.attribute_defs(elem).iter().any(|d| d.name == attr);
        if !declared {
            self.errors
                .push(Error::UnknownEdge { parent: elem.to_string(), child: format!("@{attr}") });
            return self;
        }
        self.attr_ann.insert((elem.to_string(), attr.to_string()), ann);
        self
    }

    /// Annotate `(parent, child)` with `[q]`.
    pub fn cond(self, parent: &str, child: &str, q: Qualifier) -> Self {
        self.set(parent, child, Annotation::Cond(q))
    }

    /// Annotate with a qualifier given as text, e.g.
    /// `"*/patient/wardNo=$wardNo"`.
    pub fn cond_str(self, parent: &str, child: &str, q: &str) -> Result<Self> {
        let path = sxv_xpath::parse(&format!(".[{q}]"))?;
        match path {
            Path::Filter(_, qual) => Ok(self.cond(parent, child, *qual)),
            _ => unreachable!("`.[q]` always parses to a filter"),
        }
    }

    fn set(mut self, parent: &str, child: &str, ann: Annotation) -> Self {
        if !self.dtd.is_child_type(parent, child) {
            self.errors
                .push(Error::UnknownEdge { parent: parent.to_string(), child: child.to_string() });
            return self;
        }
        self.ann.insert((parent.to_string(), child.to_string()), ann);
        self
    }

    /// Apply one [`RawRule`] (see [`parse_spec_rules`]).
    pub fn apply_raw(self, rule: &RawRule) -> Result<Self> {
        Ok(if let Some(attr) = rule.child.strip_prefix('@') {
            match rule.value {
                RawValue::Allow => self.allow_attr(&rule.parent, attr),
                RawValue::Deny => self.deny_attr(&rule.parent, attr),
                RawValue::Cond(_) => unreachable!("rejected by parse_spec_rules"),
            }
        } else {
            match &rule.value {
                RawValue::Allow => self.allow(&rule.parent, &rule.child),
                RawValue::Deny => self.deny(&rule.parent, &rule.child),
                RawValue::Cond(q) => self.cond_str(&rule.parent, &rule.child, q)?,
            }
        })
    }

    /// Keep unbound `$parameters` as literal `$name` values instead of
    /// failing at [`AccessSpecBuilder::build`]. Used by the linter, which
    /// analyzes specifications without a concrete user session; the
    /// opaque literal never compares equal to real data, so qualifier
    /// lints stay conservative.
    pub fn keep_unbound_params(mut self) -> Self {
        self.keep_unbound = true;
        self
    }

    /// Finish: validate edges and substitute all `$parameters`.
    pub fn build(mut self) -> Result<AccessSpec> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if self.keep_unbound {
            // Bind every still-unbound parameter to its own `$name`.
            let mut names = std::collections::BTreeSet::new();
            for annotation in self.ann.values() {
                if let Annotation::Cond(q) = annotation {
                    collect_param_names(q, &mut names);
                }
            }
            for name in names {
                self.params.entry(name.clone()).or_insert(format!("${name}"));
            }
        }
        for annotation in self.ann.values_mut() {
            if let Annotation::Cond(q) = annotation {
                *q = substitute_qual(q, &self.params)?;
            }
        }
        Ok(AccessSpec { dtd: self.dtd, ann: self.ann, attr_ann: self.attr_ann })
    }
}

/// Replace `$name` literals in a path with bound parameter values.
pub fn substitute_path(p: &Path, params: &HashMap<String, String>) -> Result<Path> {
    Ok(match p {
        Path::Empty | Path::EmptySet | Path::Doc | Path::Label(_) | Path::Wildcard | Path::Text => {
            p.clone()
        }
        Path::Step(a, b) => Path::step(substitute_path(a, params)?, substitute_path(b, params)?),
        Path::Descendant(inner) => Path::descendant(substitute_path(inner, params)?),
        Path::Closure(inner) => Path::closure(substitute_path(inner, params)?),
        Path::Union(a, b) => Path::union(substitute_path(a, params)?, substitute_path(b, params)?),
        Path::Filter(base, q) => {
            Path::filter(substitute_path(base, params)?, substitute_qual(q, params)?)
        }
    })
}

/// Replace `$name` literals in a qualifier with bound parameter values.
pub fn substitute_qual(q: &Qualifier, params: &HashMap<String, String>) -> Result<Qualifier> {
    Ok(match q {
        Qualifier::True | Qualifier::False | Qualifier::Attr(_) => q.clone(),
        Qualifier::Path(p) => Qualifier::path(substitute_path(p, params)?),
        Qualifier::Eq(p, c) => {
            Qualifier::Eq(substitute_path(p, params)?, substitute_value(c, params)?)
        }
        Qualifier::AttrEq(a, v) => Qualifier::AttrEq(a.clone(), substitute_value(v, params)?),
        Qualifier::And(a, b) => {
            Qualifier::and(substitute_qual(a, params)?, substitute_qual(b, params)?)
        }
        Qualifier::Or(a, b) => {
            Qualifier::or(substitute_qual(a, params)?, substitute_qual(b, params)?)
        }
        Qualifier::Not(inner) => Qualifier::not(substitute_qual(inner, params)?),
    })
}

/// Collect `$parameter` names occurring in comparison values.
fn collect_param_names(q: &Qualifier, out: &mut std::collections::BTreeSet<String>) {
    match q {
        Qualifier::True | Qualifier::False | Qualifier::Attr(_) => {}
        Qualifier::Path(p) => collect_param_names_path(p, out),
        Qualifier::Eq(p, c) => {
            collect_param_names_path(p, out);
            if let Some(name) = c.strip_prefix('$') {
                out.insert(name.to_string());
            }
        }
        Qualifier::AttrEq(_, v) => {
            if let Some(name) = v.strip_prefix('$') {
                out.insert(name.to_string());
            }
        }
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            collect_param_names(a, out);
            collect_param_names(b, out);
        }
        Qualifier::Not(inner) => collect_param_names(inner, out),
    }
}

fn collect_param_names_path(p: &Path, out: &mut std::collections::BTreeSet<String>) {
    match p {
        Path::Empty | Path::EmptySet | Path::Doc | Path::Label(_) | Path::Wildcard | Path::Text => {
        }
        Path::Step(a, b) | Path::Union(a, b) => {
            collect_param_names_path(a, out);
            collect_param_names_path(b, out);
        }
        Path::Descendant(inner) | Path::Closure(inner) => collect_param_names_path(inner, out),
        Path::Filter(base, q) => {
            collect_param_names_path(base, out);
            collect_param_names(q, out);
        }
    }
}

fn substitute_value(value: &str, params: &HashMap<String, String>) -> Result<String> {
    match value.strip_prefix('$') {
        None => Ok(value.to_string()),
        Some(name) => {
            params.get(name).cloned().ok_or_else(|| Error::UnboundParameter(name.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;

    fn hospital_dtd() -> Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    /// The paper's Example 3.1 nurse specification.
    pub(crate) fn nurse_spec(ward: &str) -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", ward)
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_constructs_nurse_spec() {
        let s = nurse_spec("6");
        assert_eq!(s.annotation("dept", "clinicalTrial"), Some(&Annotation::Deny));
        assert_eq!(s.annotation("clinicalTrial", "patientInfo"), Some(&Annotation::Allow));
        assert_eq!(s.annotation("dept", "patientInfo"), None, "inherited, not explicit");
        match s.annotation("hospital", "dept") {
            Some(Annotation::Cond(q)) => {
                assert!(q.to_string().contains("wardNo='6'"), "{q}");
            }
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn unknown_edge_rejected() {
        let e =
            AccessSpec::builder(&hospital_dtd()).deny("hospital", "patient").build().unwrap_err();
        assert!(matches!(e, Error::UnknownEdge { .. }));
    }

    #[test]
    fn unbound_parameter_rejected() {
        let e = AccessSpec::builder(&hospital_dtd())
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .build()
            .unwrap_err();
        assert!(matches!(e, Error::UnboundParameter(p) if p == "wardNo"));
    }

    #[test]
    fn parse_textual_spec() {
        let text = r#"
# nurse policy (Example 3.1)
ann(hospital, dept) = [*/patient/wardNo=$wardNo]
ann(dept, clinicalTrial) = N
ann(clinicalTrial, patientInfo) = Y
ann(clinicalTrial, test) = N
ann(treatment, trial) = N
ann(treatment, regular) = N
ann(trial, bill) = Y
ann(regular, bill) = Y
ann(regular, medication) = Y
"#;
        let s = AccessSpec::parse(&hospital_dtd(), text, &[("wardNo", "6")]).unwrap();
        assert_eq!(s.len(), 9);
        assert_eq!(s.annotation("treatment", "trial"), Some(&Annotation::Deny));
    }

    #[test]
    fn parse_attribute_annotations() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a*)><!ELEMENT a (#PCDATA)>\n<!ATTLIST a id CDATA #REQUIRED>\n<!ATTLIST a secret CDATA #IMPLIED>",
            "r",
        )
        .unwrap();
        let s = AccessSpec::parse(&dtd, "ann(a, @secret) = N\nann(a, @id) = Y", &[]).unwrap();
        assert!(!s.attribute_visible("a", "secret"));
        assert!(s.attribute_visible("a", "id"));
        // Conditional attribute annotations are rejected.
        assert!(AccessSpec::parse(&dtd, "ann(a, @secret) = [x]", &[]).is_err());
        // Unknown attribute rejected.
        assert!(AccessSpec::parse(&dtd, "ann(a, @ghost) = N", &[]).is_err());
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let dtd = hospital_dtd();
        for bad in [
            "nonsense",
            "ann(hospital dept) = Y",
            "ann(hospital, dept) Y",
            "ann(hospital, dept) = MAYBE",
        ] {
            let e = AccessSpec::parse(&dtd, bad, &[]).unwrap_err();
            assert!(matches!(e, Error::SpecParse { .. }), "{bad} should fail, got {e:?}");
        }
    }

    #[test]
    fn raw_rules_parse_without_validation() {
        let rules = parse_spec_rules(
            "# c\nann(hospital, dept) = [*/wardNo=$w]\nann(ghost, spook) = N\nann(a, @id) = Y",
        )
        .unwrap();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].value, RawValue::Cond("*/wardNo=$w".into()));
        assert_eq!(rules[0].line, 2);
        assert_eq!((rules[1].parent.as_str(), rules[1].child.as_str()), ("ghost", "spook"));
        assert!(rules[2].is_attribute());
        assert!(parse_spec_rules("ann(a, @id) = [q]").is_err());
        assert!(parse_spec_rules("nonsense").is_err());
    }

    #[test]
    fn keep_unbound_params_substitutes_literal() {
        let s = AccessSpec::builder(&hospital_dtd())
            .keep_unbound_params()
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .build()
            .unwrap();
        match s.annotation("hospital", "dept") {
            Some(Annotation::Cond(q)) => assert!(q.to_string().contains("$wardNo"), "{q}"),
            other => panic!("expected conditional, got {other:?}"),
        }
        // Explicit bindings still win.
        let s = AccessSpec::builder(&hospital_dtd())
            .keep_unbound_params()
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .build()
            .unwrap();
        match s.annotation("hospital", "dept") {
            Some(Annotation::Cond(q)) => assert!(q.to_string().contains("'6'"), "{q}"),
            other => panic!("expected conditional, got {other:?}"),
        }
    }

    #[test]
    fn annotations_iterator_sorted() {
        let s = nurse_spec("6");
        let list: Vec<_> = s.annotations().map(|(p, c, _)| format!("{p}/{c}")).collect();
        let mut sorted = list.clone();
        sorted.sort();
        assert_eq!(list, sorted);
        assert_eq!(list.len(), 9);
    }

    #[test]
    fn annotation_display() {
        assert_eq!(Annotation::Allow.to_string(), "Y");
        assert_eq!(Annotation::Deny.to_string(), "N");
        let q = Qualifier::path(sxv_xpath::parse("a").unwrap());
        assert_eq!(Annotation::Cond(q).to_string(), "[a]");
    }

    #[test]
    fn substitute_in_nested_positions() {
        let params: HashMap<String, String> = [("x".to_string(), "7".to_string())].into();
        let p = sxv_xpath::parse("a[b=$x or not(c=$x)]").unwrap();
        let out = substitute_path(&p, &params).unwrap();
        assert_eq!(out.to_string(), "a[b='7' or not(c='7')]");
    }
}

#![warn(missing_docs)]
//! # sxv-core — security views for XML
//!
//! The primary contribution of *Secure XML Querying with Security Views*
//! (Fan, Chan, Garofalakis — SIGMOD 2004), implemented in full:
//!
//! * **Access specifications** (§3.2): [`AccessSpec`] annotates document-DTD
//!   edges with `Y` / `N` / `[q]` ([`Annotation`]), with inheritance,
//!   overriding, content-based XPath qualifiers and `$parameters`.
//! * **Node accessibility** (§3.2, Prop. 3.1): [`accessibility::compute`]
//!   labels every document node accessible/inaccessible.
//! * **Security views** (§3.3): [`SecurityView`] = view DTD + hidden XPath
//!   annotations `σ`; [`materialize`] implements the §3.3 semantics (used
//!   for testing only — the query path never materializes).
//! * **Algorithm `derive`** (§3.4, Fig. 5): [`derive_view`] builds a sound
//!   and complete view definition in quadratic time — pruning,
//!   short-cutting and dummy-renaming inaccessible DTD regions, including
//!   recursive ones.
//! * **Algorithm `rewrite`** (§4, Fig. 6): [`rewrite()`](rewrite::rewrite) transforms a view
//!   query into an equivalent document query by dynamic programming over
//!   (sub-query, view-DTD-node) pairs, with `recProc` precomputation for
//!   `//`. Recursive views translate *directly* into Kleene-closure
//!   expressions by state elimination over the cyclic view graph — the
//!   §4.2 height-bounded unfolding ([`rewrite_with_height`]) is kept only
//!   as a differential-testing oracle.
//! * **Algorithm `optimize`** (§5, Fig. 10): [`optimize()`](optimize::optimize) prunes rewritten
//!   queries using DTD structural constraints (co-existence / exclusive /
//!   non-existence) and an approximate containment test based on
//!   qualifier-aware graph simulation over image graphs (Prop. 5.1).
//! * **The §6 baseline**: [`NaiveBaseline`] annotates document elements
//!   with `accessibility` attributes and rewrites queries by widening `/`
//!   to `//` and appending `[@accessibility='1']`.
//! * [`SecureEngine`] ties it together: answer view queries over the
//!   original document via naive / rewrite / rewrite+optimize strategies;
//!   [`PolicyRegistry`] manages multiple user-group policies over one
//!   document (the full Fig. 3 framework).
//!
//! ## A note on Fig. 6 faithfulness
//!
//! The paper's `rewrite` combines step translations as
//! `rw(p1/p2, A) = rw(p1,A)/(∪_v rw(p2,v))`, which can leak when two view
//! types reachable via `p1` share a child label but carry different σ
//! annotations (a `v`-specific continuation gets applied under a different
//! type's image). Our primary implementation keeps the dynamic program but
//! tables translations *per target type*, so every composed fragment stays
//! context-correct; the verbatim Fig. 6 combination is available as
//! [`rewrite::rewrite_paper_merge`] for comparison. Both coincide on view
//! DTDs without shared child labels (e.g. every example in the paper).

pub mod accessibility;
pub mod analysis;
pub mod annotate;
pub mod engine;
pub mod error;
pub mod materialized_baseline;
pub mod naive;
pub mod optimize;
pub mod plancost;
pub mod registry;
pub mod rewrite;
pub mod spec;
pub mod view;

pub use accessibility::{compute_accessibility, Accessibility};
pub use analysis::{audit_view, certify_context, AuditFinding, TypeAccessibility};
pub use annotate::build_access_view;
pub use engine::{AccessCacheStats, Approach, CacheStats, Planned, QueryReport, SecureEngine};
pub use error::{Error, Result};
pub use materialized_baseline::MaterializedBaseline;
pub use naive::NaiveBaseline;
pub use optimize::{approx_contained, optimize, optimize_with_height};
pub use plancost::dtd_cost_model;
pub use registry::PolicyRegistry;
pub use rewrite::{rewrite, rewrite_paper_merge, rewrite_with_height, ViewGraph};
pub use spec::{parse_spec_rules, RawRule, RawValue};
pub use spec::{AccessSpec, AccessSpecBuilder, Annotation};
pub use sxv_xpath::Backend;
pub use sxv_xpath::{certify, CertFinding, CertifyContext, PlanCertificate, TraceLine};
pub use sxv_xpath::{is_dummy_label, AccessView};
pub use sxv_xpath::{CompiledQuery, CostModel, PlanPolicy, PlanSummary};
pub use view::def::{SecurityView, ViewContent, ViewItem};
pub use view::derive::derive_view;
pub use view::materialize::{materialize, Materialized};
pub use view::parse::parse_view_text;

//! Parse a textual view definition back into a [`SecurityView`].
//!
//! The format is the one printed by
//! [`SecurityView::view_dtd_to_string`] plus optional σ lines (as shown
//! by `sxv derive --show-sigma`):
//!
//! ```text
//! /* view root: hospital */
//! hospital -> dept*
//! dept -> patientInfo*, staffInfo
//! σ(hospital, dept) = dept[*/patient/wardNo='6']
//! ```
//!
//! `sigma(A, B) = …` is accepted as an ASCII spelling of `σ(A, B) = …`,
//! and an edge without a σ line defaults to selecting the child's own
//! label (`σ(A, B) = B`). This exists for hand-authoring and auditing
//! view definitions (`sxv lint --view`); `derive` never round-trips
//! through text.

use crate::error::{Error, Result};
use crate::view::def::{SecurityView, ViewContent, ViewItem};
use std::collections::BTreeMap;
use sxv_xpath::Path;

/// Parse a textual view definition. See the module docs for the format.
pub fn parse_view_text(text: &str) -> Result<SecurityView> {
    let mut root: Option<String> = None;
    let mut productions: Vec<(String, ViewContent)> = Vec::new();
    let mut sigma: BTreeMap<(String, String), Path> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |message: String| Error::ViewParse { line: lineno + 1, message };
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        if let Some(comment) = line.strip_prefix("/*") {
            let comment = comment.strip_suffix("*/").unwrap_or(comment).trim();
            if let Some(name) = comment.strip_prefix("view root:") {
                root = Some(name.trim().to_string());
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("σ(").or_else(|| line.strip_prefix("sigma(")) {
            let (args, value) = rest
                .split_once(')')
                .ok_or_else(|| err("expected `σ(parent, child) = path`".into()))?;
            let (parent, child) = args.split_once(',').ok_or_else(|| err("expected ','".into()))?;
            let value = value
                .trim()
                .strip_prefix('=')
                .ok_or_else(|| err("expected '=' after σ(parent, child)".into()))?;
            let path = sxv_xpath::parse(value.trim())
                .map_err(|e| err(format!("σ path does not parse: {e}")))?;
            sigma.insert((parent.trim().to_string(), child.trim().to_string()), path);
            continue;
        }
        let (name, rhs) = line
            .split_once("->")
            .ok_or_else(|| err("expected `name -> content` or `σ(parent, child) = path`".into()))?;
        let name = name.trim();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(err(format!("bad element type name {name:?}")));
        }
        let content = parse_content(rhs.trim()).map_err(&err)?;
        if productions.iter().any(|(n, _)| n == name) {
            return Err(err(format!("duplicate production for `{name}`")));
        }
        productions.push((name.to_string(), content));
    }
    let root = match root {
        Some(r) => r,
        None => match productions.first() {
            Some((n, _)) => n.clone(),
            None => {
                return Err(Error::ViewParse { line: 1, message: "empty view definition".into() })
            }
        },
    };
    // Closure checks: every referenced type declared, every σ on a real edge.
    let declared = |n: &str| productions.iter().any(|(name, _)| name == n);
    if !declared(&root) {
        return Err(Error::ViewParse {
            line: 1,
            message: format!("view root `{root}` has no production"),
        });
    }
    for (name, content) in &productions {
        for child in content.child_types() {
            if !declared(child) {
                return Err(Error::ViewParse {
                    line: 1,
                    message: format!("`{name}` references undeclared type `{child}`"),
                });
            }
        }
    }
    for (parent, child) in sigma.keys() {
        let on_edge = productions
            .iter()
            .any(|(name, c)| name == parent && c.child_types().contains(&child.as_str()));
        if !on_edge {
            return Err(Error::ViewParse {
                line: 1,
                message: format!("σ({parent}, {child}) does not match any view edge"),
            });
        }
    }
    // Edges without an explicit σ line default to selecting the child's
    // own label, σ(A, B) = B (see the module docs) — without this a
    // hand-authored view is unusable by rewrite/materialize.
    for (name, content) in &productions {
        for child in content.child_types() {
            let key = (name.clone(), child.to_string());
            sigma.entry(key).or_insert_with(|| Path::label(child));
        }
    }
    Ok(SecurityView::new(root, productions, sigma))
}

/// Parse one production right-hand side.
fn parse_content(rhs: &str) -> std::result::Result<ViewContent, String> {
    match rhs {
        "" => return Err("empty content".into()),
        "str" => return Ok(ViewContent::Str),
        "ε" | "empty" | "EMPTY" => return Ok(ViewContent::Empty),
        _ => {}
    }
    if rhs.contains('+') {
        let mut alternatives = Vec::new();
        let mut optional = false;
        for (i, alt) in rhs.split('+').enumerate() {
            let alt = alt.trim();
            match alt {
                "ε" | "empty" => optional = true,
                _ => {
                    check_name(alt)?;
                    if i > 0 && optional {
                        return Err("ε must be the last choice alternative".into());
                    }
                    alternatives.push(alt.to_string());
                }
            }
        }
        if alternatives.is_empty() {
            return Err("choice needs at least one named alternative".into());
        }
        return Ok(ViewContent::Choice { alternatives, optional });
    }
    let mut items = Vec::new();
    for item in rhs.split(',') {
        let item = item.trim();
        match item.strip_suffix('*') {
            Some(base) => {
                let base = base.trim();
                check_name(base)?;
                items.push(ViewItem::Many(base.to_string()));
            }
            None => {
                check_name(item)?;
                items.push(ViewItem::One(item.to_string()));
            }
        }
    }
    match items.as_slice() {
        [ViewItem::Many(b)] => Ok(ViewContent::Star(b.clone())),
        _ => Ok(ViewContent::Seq(items)),
    }
}

fn check_name(name: &str) -> std::result::Result<(), String> {
    if name.is_empty() || name.contains(char::is_whitespace) || name.contains(['[', ']', '(']) {
        return Err(format!("bad element type name {name:?}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::derive::derive_view;
    use crate::AccessSpec;
    use sxv_dtd::parse_dtd;

    #[test]
    fn parses_printed_view_back() {
        let text = "/* view root: hospital */\n\
                    hospital -> dept*\n\
                    dept -> patientInfo*, staffInfo\n\
                    patientInfo -> patient*\n\
                    patient -> name, wardNo, treatment\n\
                    treatment -> dummy1 + dummy2\n\
                    dummy1 -> bill\n\
                    dummy2 -> bill, medication\n\
                    staffInfo -> staff*\n\
                    staff -> doctor + nurse\n\
                    doctor -> name\n\
                    nurse -> name\n\
                    name -> str\n\
                    wardNo -> str\n\
                    bill -> str\n\
                    medication -> str\n\
                    σ(hospital, dept) = dept[*/patient/wardNo='6']\n\
                    sigma(dummy1, bill) = trial/bill\n";
        let view = parse_view_text(text).unwrap();
        assert_eq!(view.root(), "hospital");
        assert_eq!(view.production("hospital"), Some(&ViewContent::Star("dept".into())));
        assert_eq!(
            view.production("treatment"),
            Some(&ViewContent::Choice {
                alternatives: vec!["dummy1".into(), "dummy2".into()],
                optional: false
            })
        );
        assert_eq!(
            view.sigma("hospital", "dept").unwrap().to_string(),
            "dept[*/patient/wardNo='6']"
        );
        assert_eq!(view.sigma("dummy1", "bill").unwrap().to_string(), "trial/bill");
        assert_eq!(
            view.sigma("dept", "staffInfo").unwrap().to_string(),
            "staffInfo",
            "an edge without a σ line defaults to the child's own label"
        );
    }

    #[test]
    fn optional_choice_and_empty() {
        let view = parse_view_text("r -> a + ε\na -> empty\n").unwrap();
        assert_eq!(
            view.production("r"),
            Some(&ViewContent::Choice { alternatives: vec!["a".into()], optional: true })
        );
        assert_eq!(view.production("a"), Some(&ViewContent::Empty));
    }

    #[test]
    fn rejects_malformed_input() {
        for (bad, why) in [
            ("r -> a\n", "undeclared type"),
            ("r -> a[]\na -> str\n", "bad name"),
            ("r -> str\nr -> str\n", "duplicate"),
            ("σ(r, a) = b\nr -> str\n", "σ off-edge"),
            ("r -> str\nσ(r, a) = ((\n", "σ path"),
            ("just words\n", "no arrow"),
            ("", "empty"),
            ("/* view root: z */\nr -> str\n", "root undeclared"),
        ] {
            let e = parse_view_text(bad);
            assert!(matches!(e, Err(Error::ViewParse { .. })), "{why}: {e:?}");
        }
    }

    #[test]
    fn derive_output_roundtrips_through_text() {
        let dtd = parse_dtd(
            "<!ELEMENT r (a, b)><!ELEMENT a (c*)><!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let view = derive_view(&spec).unwrap();
        let mut text = view.view_dtd_to_string();
        for (p, c, q) in view.sigma_entries() {
            text.push_str(&format!("σ({p}, {c}) = {q}\n"));
        }
        let reparsed = parse_view_text(&text).unwrap();
        assert_eq!(reparsed.root(), view.root());
        assert_eq!(reparsed.productions(), view.productions());
        for (p, c, q) in view.sigma_entries() {
            assert_eq!(reparsed.sigma(p, c).map(|x| x.to_string()), Some(q.to_string()));
        }
    }
}

//! Materialization semantics of security views — §3.3 of the paper.
//!
//! **Views are never materialized on the query path** (that is the whole
//! point of query rewriting); this module implements the top-down
//! materialization procedure of §3.3 because it *defines* the semantics of
//! a view, and the test-suite uses it to check soundness/completeness of
//! `derive` and the equivalence guarantee of `rewrite`
//! (`p(T_v) = p_t(T)`).
//!
//! The construction expands the partial view tree leaf by leaf, evaluating
//! the σ annotation for each child type; it *aborts* when the extracted
//! data does not fit the view production (cases 2–4 of §3.3). Dummy
//! children extract the inaccessible document node they rename, so the
//! accessibility filter applies only to real-labelled children.

use crate::accessibility::{self, Accessibility};
use crate::error::{Error, Result};
use crate::spec::AccessSpec;
use crate::view::def::{SecurityView, ViewContent, ViewItem};
use sxv_xml::{Document, NodeId};
use sxv_xpath::eval;

/// A materialized view tree plus the mapping back to source nodes.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The view document `T_v` (conforms to the view DTD).
    pub doc: Document,
    /// `source[view_node.index()]` = the document node this view node was
    /// extracted from (text nodes map to the source text node).
    pub source: Vec<NodeId>,
}

impl Materialized {
    /// Source document node of a view node.
    pub fn source_of(&self, view_node: NodeId) -> NodeId {
        self.source[view_node.index()]
    }

    /// Map a set of view nodes to their source nodes (keeps order).
    pub fn sources_of(&self, view_nodes: &[NodeId]) -> Vec<NodeId> {
        view_nodes.iter().map(|&v| self.source_of(v)).collect()
    }
}

/// Materialize the view of `doc` defined by `view` w.r.t. `spec`.
pub fn materialize(spec: &AccessSpec, view: &SecurityView, doc: &Document) -> Result<Materialized> {
    let access = accessibility::compute(spec, doc);
    let source_root = doc.root().map_err(|_| Error::MaterializeAbort {
        node: "<document>".into(),
        message: "document is empty".into(),
    })?;
    let mut out = Document::new();
    let view_root = out.create_root(view.root()).expect("fresh document has no root");
    let mut m = Materializer { view, doc, access, out, source: vec![source_root] };
    m.copy_attributes(view_root, view.root(), source_root);
    m.expand(view_root, view.root(), source_root)?;
    Ok(Materialized { doc: m.out, source: m.source })
}

struct Materializer<'a> {
    view: &'a SecurityView,
    doc: &'a Document,
    access: Accessibility,
    out: Document,
    source: Vec<NodeId>,
}

impl<'a> Materializer<'a> {
    fn abort(&self, label: &str, message: impl Into<String>) -> Error {
        Error::MaterializeAbort { node: format!("<{label}>"), message: message.into() }
    }

    /// Extract the children of view node `v` (type `label`, source `src`).
    fn expand(&mut self, v: NodeId, label: &str, src: NodeId) -> Result<()> {
        let production = self
            .view
            .production(label)
            .ok_or_else(|| self.abort(label, "no view production"))?
            .clone();
        match production {
            ViewContent::Empty => Ok(()),
            ViewContent::Str => {
                // Case (2): the text content of the source element.
                for &c in self.doc.children(src) {
                    if let Some(t) = self.doc.text_opt(c) {
                        let tv = self.out.append_text(v, t);
                        debug_assert_eq!(tv.index(), self.source.len());
                        self.source.push(c);
                    }
                }
                Ok(())
            }
            ViewContent::Seq(items) => {
                for item in items {
                    let b = item.name();
                    let extracted = self.extract(label, b, src)?;
                    match item {
                        // Case (3): exactly one node.
                        ViewItem::One(_) => {
                            if extracted.len() != 1 {
                                return Err(self.abort(
                                    label,
                                    format!(
                                        "σ({label}, {b}) selected {} nodes, expected 1",
                                        extracted.len()
                                    ),
                                ));
                            }
                            self.attach(v, b, extracted[0])?;
                        }
                        // Compact form: all nodes, in document order.
                        ViewItem::Many(_) => {
                            for n in extracted {
                                self.attach(v, b, n)?;
                            }
                        }
                    }
                }
                Ok(())
            }
            ViewContent::Choice { alternatives, optional } => {
                // Case (4): exactly one alternative yields exactly one node
                // (zero allowed when a hidden branch was pruned).
                let mut hits: Vec<(&str, NodeId)> = Vec::new();
                for b in &alternatives {
                    for n in self.extract(label, b, src)? {
                        hits.push((b, n));
                    }
                }
                match hits.as_slice() {
                    [] if optional => Ok(()),
                    [] => Err(self.abort(label, "no choice alternative matched")),
                    &[(b, n)] => self.attach(v, b, n),
                    many => Err(self.abort(
                        label,
                        format!("{} choice alternatives matched, expected 1", many.len()),
                    )),
                }
            }
            ViewContent::Star(b) => {
                // Case (5): all nodes, in document order.
                for n in self.extract(label, &b, src)? {
                    self.attach(v, &b, n)?;
                }
                Ok(())
            }
        }
    }

    /// Evaluate σ(parent, child) at `src`, filtering to accessible nodes
    /// for real child labels (dummies extract structural placeholders).
    fn extract(&self, parent: &str, child: &str, src: NodeId) -> Result<Vec<NodeId>> {
        let sigma = self
            .view
            .sigma(parent, child)
            .ok_or_else(|| self.abort(parent, format!("missing σ({parent}, {child})")))?;
        let mut nodes = eval(self.doc, sigma, &[src]);
        if !SecurityView::is_dummy(child) {
            nodes.retain(|&n| self.access.is_accessible(n));
        }
        Ok(nodes)
    }

    /// Create the view child and recurse.
    fn attach(&mut self, parent: NodeId, label: &str, src: NodeId) -> Result<()> {
        let child = self.out.append_element(parent, label);
        debug_assert_eq!(child.index(), self.source.len());
        self.source.push(src);
        self.copy_attributes(child, label, src);
        self.expand(child, label, src)
    }

    /// Copy the attributes of the source node that the view exposes.
    fn copy_attributes(&mut self, view_node: NodeId, label: &str, src: NodeId) {
        for attr in self.view.visible_attributes(label) {
            if let Some(value) = self.doc.attribute(src, attr) {
                let value = value.to_string();
                self.out
                    .set_attribute(view_node, attr.clone(), value)
                    .expect("view node is an element");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accessibility;
    use crate::view::derive::derive_view;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;

    fn hospital_dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    fn nurse_spec() -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    fn hospital_doc() -> Document {
        parse_xml(
            r#"<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Ann</name><wardNo>6</wardNo>
          <treatment><trial><bill>100</bill></trial></treatment>
        </patient>
      </patientInfo>
      <test>t1</test>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>6</wardNo>
        <treatment><regular><bill>70</bill><medication>m1</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Sue</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo/><test>t2</test></clinicalTrial>
    <patientInfo>
      <patient><name>Cat</name><wardNo>7</wardNo>
        <treatment><regular><bill>30</bill><medication>m2</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo/>
  </dept>
</hospital>"#,
        )
        .unwrap()
    }

    /// Example 3.3: the nurse view of the hospital document.
    #[test]
    fn nurse_view_materializes_like_example_3_3() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let m = materialize(&spec, &view, &doc).unwrap();
        let v = &m.doc;
        let root = v.root().unwrap();
        assert_eq!(v.label(root).unwrap(), "hospital");
        // Only the ward-6 dept survives the qualifier.
        let depts: Vec<_> = v.iter_children(root).collect();
        assert_eq!(depts.len(), 1);
        // dept has two patientInfo children (direct + ex-clinicalTrial) and
        // one staffInfo.
        let labels: Vec<&str> = v.children(depts[0]).iter().map(|&c| v.label(c).unwrap()).collect();
        assert_eq!(labels, ["patientInfo", "patientInfo", "staffInfo"]);
        // No clinicalTrial / trial / regular / test labels anywhere.
        for id in v.all_ids() {
            if let Some(l) = v.label_opt(id) {
                assert!(
                    !matches!(l, "clinicalTrial" | "trial" | "regular" | "test"),
                    "hidden label {l} leaked"
                );
            }
        }
        // Treatments exist and contain dummies wrapping bill/medication.
        let treatments: Vec<_> =
            v.all_ids().filter(|&i| v.label_opt(i) == Some("treatment")).collect();
        assert_eq!(treatments.len(), 2, "Ann and Bob");
        for t in &treatments {
            let kids = v.children(*t);
            assert_eq!(kids.len(), 1);
            assert!(SecurityView::is_dummy(v.label(kids[0]).unwrap()));
        }
        // Ann (trial patient) surfaces with her bill but no trial label.
        let names: Vec<String> = v
            .all_ids()
            .filter(|&i| v.label_opt(i) == Some("name"))
            .map(|i| v.string_value(i))
            .collect();
        assert!(names.contains(&"Ann".to_string()));
        assert!(names.contains(&"Bob".to_string()));
        assert!(names.contains(&"Sue".to_string()));
        assert!(!names.contains(&"Cat".to_string()), "ward-7 data hidden");
    }

    /// Soundness & completeness (§3.3 definition): the view's real-labelled
    /// nodes are exactly the accessible document nodes.
    #[test]
    fn view_nodes_are_exactly_accessible_nodes() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let access = accessibility::compute(&spec, &doc);
        let m = materialize(&spec, &view, &doc).unwrap();

        use std::collections::BTreeSet;
        let mut view_sources: BTreeSet<NodeId> = BTreeSet::new();
        for id in m.doc.all_ids() {
            let is_dummy_elem = m.doc.label_opt(id).map(SecurityView::is_dummy).unwrap_or(false);
            if !is_dummy_elem {
                view_sources.insert(m.source_of(id));
            }
        }
        let accessible: BTreeSet<NodeId> = access.accessible_ids().collect();
        assert_eq!(view_sources, accessible);
    }

    #[test]
    fn empty_spec_view_is_identity() {
        let dtd = hospital_dtd();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let m = materialize(&spec, &view, &doc).unwrap();
        assert_eq!(sxv_xml::to_string(&m.doc), sxv_xml::to_string(&doc));
    }

    #[test]
    fn materialized_view_conforms_to_text_semantics() {
        // str productions copy text with sources recorded.
        let dtd = parse_dtd("<!ELEMENT r (a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml("<r><a>hi</a></r>").unwrap();
        let m = materialize(&spec, &view, &doc).unwrap();
        assert_eq!(m.doc.string_value(m.doc.root().unwrap()), "hi");
        let a_view = m.doc.children(m.doc.root().unwrap())[0];
        let t_view = m.doc.children(a_view)[0];
        assert_eq!(doc.text(m.source_of(t_view)).unwrap(), "hi");
    }

    #[test]
    fn optional_choice_tolerates_hidden_branch() {
        let dtd =
            parse_dtd("<!ELEMENT t (x | y)><!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>", "t")
                .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("t", "x").build().unwrap();
        let view = derive_view(&spec).unwrap();
        // Document that took the hidden branch: view t has no children.
        let doc = parse_xml("<t><x>secret</x></t>").unwrap();
        let m = materialize(&spec, &view, &doc).unwrap();
        assert!(m.doc.children(m.doc.root().unwrap()).is_empty());
        // Document on the visible branch: y survives.
        let doc2 = parse_xml("<t><y>ok</y></t>").unwrap();
        let m2 = materialize(&spec, &view, &doc2).unwrap();
        assert_eq!(m2.doc.children(m2.doc.root().unwrap()).len(), 1);
    }

    #[test]
    fn empty_document_aborts() {
        let dtd = parse_dtd("<!ELEMENT r EMPTY>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        let e = materialize(&spec, &view, &Document::new()).unwrap_err();
        assert!(matches!(e, Error::MaterializeAbort { .. }));
    }

    /// Theorem 3.2 is an iff: a conditional annotation on a *required*
    /// (concatenation) child admits no sound & complete view — documents
    /// failing the qualifier make materialization abort (§3.3 case 3).
    #[test]
    fn required_child_with_false_qualifier_aborts() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec =
            AccessSpec::builder(&dtd).cond_str("r", "a", ".='keep'").unwrap().build().unwrap();
        let view = derive_view(&spec).unwrap();
        // Qualifier holds: fine.
        let good = parse_xml("<r><a>keep</a><b>x</b></r>").unwrap();
        materialize(&spec, &view, &good).unwrap();
        // Qualifier fails: the view production r → a, b cannot be filled.
        let bad = parse_xml("<r><a>drop</a><b>x</b></r>").unwrap();
        let e = materialize(&spec, &view, &bad).unwrap_err();
        assert!(matches!(e, Error::MaterializeAbort { .. }), "expected abort, got {e:?}");
        assert!(e.to_string().contains("expected 1"), "{e}");
    }

    /// A non-optional choice whose alternatives both fail aborts (§3.3
    /// case 4).
    #[test]
    fn choice_with_conditional_alternatives_aborts_when_none_match() {
        let dtd =
            parse_dtd("<!ELEMENT t (x | y)><!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>", "t")
                .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .cond_str("t", "x", ".='ok'")
            .unwrap()
            .cond_str("t", "y", ".='ok'")
            .unwrap()
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        materialize(&spec, &view, &parse_xml("<t><x>ok</x></t>").unwrap()).unwrap();
        let e = materialize(&spec, &view, &parse_xml("<t><x>no</x></t>").unwrap()).unwrap_err();
        assert!(matches!(e, Error::MaterializeAbort { .. }));
    }

    #[test]
    fn conditional_annotation_filters_at_materialization() {
        let dtd =
            parse_dtd("<!ELEMENT r (a*)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", "r").unwrap();
        let spec =
            AccessSpec::builder(&dtd).cond_str("r", "a", "b='keep'").unwrap().build().unwrap();
        let view = derive_view(&spec).unwrap();
        let doc = parse_xml("<r><a><b>keep</b></a><a><b>drop</b></a></r>").unwrap();
        let m = materialize(&spec, &view, &doc).unwrap();
        let kids = m.doc.children(m.doc.root().unwrap());
        assert_eq!(kids.len(), 1);
        assert_eq!(m.doc.string_value(kids[0]), "keep");
    }
}

//! Security views: definition, derivation (Fig. 5) and materialization
//! semantics (§3.3).

pub mod def;
pub mod derive;
pub mod materialize;
pub mod parse;

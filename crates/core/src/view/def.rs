//! Security-view definitions — §3.3 syntax.
//!
//! A security view `V : S → D_v` is a pair `(D_v, σ)`: a view DTD exposed
//! to authorized users, plus hidden XPath annotations `σ(A, B)` that
//! extract, from the original document, the `B` children of an `A` element
//! of the view. `σ(r_v) = r` maps the view root to the document root.
//!
//! View productions use [`ViewContent`], a superset of the paper's normal
//! form that admits the paper's own "more compact form" (Example 3.4
//! compacts `patientInfo, patientInfo` to `patientInfo*`) and optional
//! choices (needed for soundness when an entire disjunct of the document
//! DTD is inaccessible with no accessible descendants).

use std::collections::BTreeMap;
use std::fmt;
use sxv_dtd::{AttDef, Content, GeneralDtd};
use sxv_xpath::Path;

/// One particle in a view concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewItem {
    /// Exactly one `B` child (σ must select exactly one accessible node).
    One(String),
    /// Zero or more `B` children (σ selects all of them).
    Many(String),
}

impl ViewItem {
    /// The element-type name of this particle.
    pub fn name(&self) -> &str {
        match self {
            ViewItem::One(n) | ViewItem::Many(n) => n,
        }
    }
}

/// A view-DTD production right-hand side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViewContent {
    /// `str`.
    Str,
    /// `ε`.
    Empty,
    /// Concatenation of particles (possibly starred — the compact form).
    Seq(Vec<ViewItem>),
    /// Disjunction. `optional` marks choices where a document may satisfy
    /// *no* alternative because an entire inaccessible disjunct was pruned
    /// (extension beyond Fig. 5 that keeps such views sound).
    Choice {
        /// The alternative element types.
        alternatives: Vec<String>,
        /// True when a hidden branch was pruned (zero children allowed).
        optional: bool,
    },
    /// `B*`.
    Star(String),
}

impl ViewContent {
    /// The element types appearing in this production, in order, deduped.
    pub fn child_types(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        match self {
            ViewContent::Str | ViewContent::Empty => {}
            ViewContent::Seq(items) => {
                for item in items {
                    if !out.contains(&item.name()) {
                        out.push(item.name());
                    }
                }
            }
            ViewContent::Choice { alternatives, .. } => {
                for a in alternatives {
                    if !out.contains(&a.as_str()) {
                        out.push(a);
                    }
                }
            }
            ViewContent::Star(n) => out.push(n),
        }
        out
    }
}

impl fmt::Display for ViewContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViewContent::Str => write!(f, "str"),
            ViewContent::Empty => write!(f, "ε"),
            ViewContent::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match item {
                        ViewItem::One(n) => write!(f, "{n}")?,
                        ViewItem::Many(n) => write!(f, "{n}*")?,
                    }
                }
                Ok(())
            }
            ViewContent::Choice { alternatives, optional } => {
                write!(f, "{}", alternatives.join(" + "))?;
                if *optional {
                    write!(f, " + ε")?;
                }
                Ok(())
            }
            ViewContent::Star(n) => write!(f, "{n}*"),
        }
    }
}

/// A security view definition `V = (D_v, σ)`.
#[derive(Debug, Clone)]
pub struct SecurityView {
    root: String,
    /// View-DTD productions in derivation order.
    productions: Vec<(String, ViewContent)>,
    index: BTreeMap<String, usize>,
    /// `σ(A, B)` — hidden from view users.
    sigma: BTreeMap<(String, String), Path>,
    /// Visible attributes per view element type (attribute-level access
    /// control; dummies expose none).
    attributes: BTreeMap<String, Vec<String>>,
}

impl SecurityView {
    /// Assemble a view (used by `derive`; library users normally call
    /// [`crate::derive_view`]).
    pub fn new(
        root: String,
        productions: Vec<(String, ViewContent)>,
        sigma: BTreeMap<(String, String), Path>,
    ) -> Self {
        let index = productions.iter().enumerate().map(|(i, (n, _))| (n.clone(), i)).collect();
        SecurityView { root, productions, index, sigma, attributes: BTreeMap::new() }
    }

    /// Attach the visible-attribute sets (used by `derive`).
    pub fn with_attributes(mut self, attributes: BTreeMap<String, Vec<String>>) -> Self {
        self.attributes = attributes;
        self
    }

    /// Visible attributes of a view element type.
    pub fn visible_attributes(&self, label: &str) -> &[String] {
        self.attributes.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is `attr` visible on view elements labelled `label`?
    pub fn attribute_visible(&self, label: &str, attr: &str) -> bool {
        self.visible_attributes(label).iter().any(|a| a == attr)
    }

    /// The view root type `r_v` (same label as the document root `r`).
    pub fn root(&self) -> &str {
        &self.root
    }

    /// The view production for `name`.
    pub fn production(&self, name: &str) -> Option<&ViewContent> {
        self.index.get(name).map(|&i| &self.productions[i].1)
    }

    /// All view productions in derivation order.
    pub fn productions(&self) -> &[(String, ViewContent)] {
        &self.productions
    }

    /// The hidden annotation `σ(parent, child)`.
    pub fn sigma(&self, parent: &str, child: &str) -> Option<&Path> {
        self.sigma.get(&(parent.to_string(), child.to_string()))
    }

    /// All σ entries (for inspection/tests).
    pub fn sigma_entries(&self) -> impl Iterator<Item = (&str, &str, &Path)> {
        self.sigma.iter().map(|((p, c), q)| (p.as_str(), c.as_str(), q))
    }

    /// Number of view element types.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// True iff the view exposes no element types (not produced by
    /// `derive`, which always emits the root).
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// True iff `name` is a generated dummy label (hides an inaccessible
    /// element type's name, §3.4).
    pub fn is_dummy(name: &str) -> bool {
        name.starts_with("dummy")
    }

    /// True iff the view DTD is recursive (some type reachable from
    /// itself), requiring §4.2 unfolding for query rewriting.
    pub fn is_recursive(&self) -> bool {
        // Tarjan-free check: DFS from each node over view children.
        let n = self.productions.len();
        let children: Vec<Vec<usize>> = self
            .productions
            .iter()
            .map(|(_, c)| {
                c.child_types().iter().filter_map(|t| self.index.get(*t).copied()).collect()
            })
            .collect();
        // Colors: 0 = white, 1 = on stack, 2 = done.
        let mut color = vec![0u8; n];
        for start in 0..n {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
                if *ci < children[v].len() {
                    let w = children[v][*ci];
                    *ci += 1;
                    match color[w] {
                        0 => {
                            color[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Export the view DTD as a standard [`GeneralDtd`], suitable for
    /// handing to users as a real `<!ELEMENT …>` file (visible attributes
    /// are exported as optional CDATA — requiredness belongs to the
    /// hidden document DTD). Materialized views conform to this DTD.
    pub fn view_general_dtd(&self) -> GeneralDtd {
        let declarations = self
            .productions
            .iter()
            .map(|(name, content)| {
                let c = match content {
                    ViewContent::Str => Content::PcData,
                    ViewContent::Empty => Content::Empty,
                    ViewContent::Seq(items) => Content::seq(
                        items
                            .iter()
                            .map(|item| match item {
                                ViewItem::One(b) => Content::Name(b.clone()),
                                ViewItem::Many(b) => {
                                    Content::Star(Box::new(Content::Name(b.clone())))
                                }
                            })
                            .collect(),
                    ),
                    ViewContent::Choice { alternatives, optional } => {
                        let choice = Content::choice(
                            alternatives.iter().map(|a| Content::Name(a.clone())).collect(),
                        );
                        if *optional {
                            Content::Opt(Box::new(choice))
                        } else {
                            choice
                        }
                    }
                    ViewContent::Star(b) => Content::Star(Box::new(Content::Name(b.clone()))),
                };
                (name.clone(), c)
            })
            .collect();
        GeneralDtd::new(self.root.clone(), declarations)
            .expect("view productions are closed over view types")
            .with_attributes(
                self.attributes.iter().map(|(elem, attrs)| {
                    (elem.clone(), attrs.iter().map(AttDef::optional).collect())
                }),
            )
            .expect("attribute element types are view types")
    }

    /// The exported view DTD as `<!ELEMENT …>` source text.
    pub fn to_dtd_source(&self) -> String {
        self.view_general_dtd().to_string()
    }

    /// Render the view DTD (the part exposed to users — σ is *not*
    /// included, matching the paper's information hiding).
    pub fn view_dtd_to_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "/* view root: {} */", self.root);
        for (name, content) in &self.productions {
            let _ = writeln!(out, "{name} -> {content}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_view() -> SecurityView {
        let mut sigma = BTreeMap::new();
        sigma.insert(("r".to_string(), "a".to_string()), sxv_xpath::parse("x/a").unwrap());
        SecurityView::new(
            "r".into(),
            vec![("r".into(), ViewContent::Star("a".into())), ("a".into(), ViewContent::Str)],
            sigma,
        )
    }

    #[test]
    fn lookup() {
        let v = tiny_view();
        assert_eq!(v.root(), "r");
        assert_eq!(v.production("r"), Some(&ViewContent::Star("a".into())));
        assert_eq!(v.sigma("r", "a").unwrap().to_string(), "x/a");
        assert!(v.sigma("a", "r").is_none());
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn recursion_detection() {
        let v = tiny_view();
        assert!(!v.is_recursive());
        let mut sigma = BTreeMap::new();
        sigma.insert(("a".into(), "a".into()), Path::label("a"));
        let rec = SecurityView::new(
            "a".into(),
            vec![
                (
                    "a".into(),
                    ViewContent::Choice {
                        alternatives: vec!["a".into(), "b".into()],
                        optional: false,
                    },
                ),
                ("b".into(), ViewContent::Empty),
            ],
            sigma,
        );
        assert!(rec.is_recursive());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ViewContent::Seq(vec![
                ViewItem::Many("patientInfo".into()),
                ViewItem::One("staffInfo".into())
            ])
            .to_string(),
            "patientInfo*, staffInfo"
        );
        assert_eq!(
            ViewContent::Choice {
                alternatives: vec!["dummy1".into(), "dummy2".into()],
                optional: false
            }
            .to_string(),
            "dummy1 + dummy2"
        );
        assert_eq!(
            ViewContent::Choice { alternatives: vec!["a".into()], optional: true }.to_string(),
            "a + ε"
        );
    }

    #[test]
    fn child_types_dedupe() {
        let c = ViewContent::Seq(vec![
            ViewItem::One("a".into()),
            ViewItem::Many("a".into()),
            ViewItem::One("b".into()),
        ]);
        assert_eq!(c.child_types(), ["a", "b"]);
    }

    #[test]
    fn dummy_names() {
        assert!(SecurityView::is_dummy("dummy1"));
        assert!(!SecurityView::is_dummy("patient"));
    }

    #[test]
    fn dtd_export_roundtrips() {
        let v = tiny_view();
        let src = v.to_dtd_source();
        assert!(src.contains("<!ELEMENT r (a*)>"), "{src}");
        assert!(src.contains("<!ELEMENT a (#PCDATA)>"), "{src}");
        let reparsed = sxv_dtd::parse_general_dtd(&src, "r").unwrap();
        assert_eq!(reparsed.root(), "r");
    }

    #[test]
    fn optional_choice_exports_as_opt_group() {
        let view = SecurityView::new(
            "t".into(),
            vec![
                (
                    "t".into(),
                    ViewContent::Choice { alternatives: vec!["y".into()], optional: true },
                ),
                ("y".into(), ViewContent::Empty),
            ],
            BTreeMap::new(),
        );
        let src = view.to_dtd_source();
        assert!(src.contains("<!ELEMENT t (y?)>") || src.contains("<!ELEMENT t ((y)?)>"), "{src}");
    }

    #[test]
    fn view_dtd_rendering_omits_sigma() {
        let v = tiny_view();
        let s = v.view_dtd_to_string();
        assert!(s.contains("r -> a*"));
        assert!(!s.contains("x/a"), "σ must stay hidden");
    }
}

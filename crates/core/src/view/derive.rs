//! Algorithm `derive` — §3.4, Fig. 5 of the paper.
//!
//! Given an access specification `S = (D, ann)`, derive a security-view
//! definition `V = (D_v, σ)`. The algorithm walks the document DTD
//! top-down with two mutually recursive procedures:
//!
//! * `Proc_Acc` handles *accessible* element types:
//!   it emits a view production and σ annotations, processing each child
//!   according to its annotation;
//! * `Proc_InAcc` handles *inaccessible* types:
//!   it computes `reg(A)` — a regular expression over the closest
//!   accessible descendants of `A` — and `path[A, C]`, the XPath query
//!   reaching each such descendant from `A`.
//!
//! Inaccessible children are then (a) **pruned** when `reg = ∅`,
//! (b) **short-cut** when `reg`'s shape matches the parent production's
//! connective (concatenation into concatenation, disjunction into
//! disjunction, single name or star under a star), or (c) **renamed** to a
//! fresh `dummyN` label otherwise, hiding the element name while keeping
//! the DTD structure. Per-type `visited` flags make the whole derivation
//! `O(|D|²)` (Theorem 3.2).
//!
//! Two behaviours beyond the letter of Fig. 5, both discussed in
//! DESIGN.md:
//!
//! * **Compaction** (the paper's "more compact form", Example 3.4): when a
//!   concatenation ends up with duplicate labels (e.g. `patientInfo,
//!   patientInfo`), they are merged into a starred particle whose σ is the
//!   union of the individual annotations.
//! * **Optional choices**: when an entire disjunct of an inaccessible
//!   choice is pruned (`reg = ∅`), the view choice is marked optional so
//!   materialization stays sound for documents that took the hidden
//!   branch.
//! * **Recursive inaccessible types** (sketched, not shown, in Fig. 5):
//!   when `Proc_InAcc` re-enters a type that is still being computed, the
//!   type is renamed to a dummy that is *retained* in the regular
//!   expression, preserving the recursive structure of the document DTD in
//!   the view.

use crate::error::Result;
use crate::spec::{AccessSpec, Annotation};
use crate::view::def::{SecurityView, ViewContent, ViewItem};
use std::collections::{BTreeMap, HashMap, HashSet};
use sxv_dtd::NormalContent;
use sxv_xpath::{Path, Qualifier};

/// Derive a sound and complete security view from a specification.
pub fn derive_view(spec: &AccessSpec) -> Result<SecurityView> {
    let mut deriver = Deriver {
        spec,
        visited_acc: HashSet::new(),
        visited_inacc: HashSet::new(),
        in_progress: HashSet::new(),
        productions: Vec::new(),
        sigma: BTreeMap::new(),
        reg: HashMap::new(),
        path_map: HashMap::new(),
        dummy_counter: 0,
        cycle_dummy: HashMap::new(),
        type_dummy: HashMap::new(),
    };
    let root = spec.dtd().root().to_string();
    deriver.proc_acc(&root);
    // Attribute-level access control: each view type (it keeps its
    // document label) exposes its declared attributes minus denied ones;
    // dummy placeholders expose none.
    let mut attributes = std::collections::BTreeMap::new();
    for (label, _) in &deriver.productions {
        if SecurityView::is_dummy(label) {
            continue;
        }
        let visible: Vec<String> = spec
            .dtd()
            .attribute_defs(label)
            .iter()
            .filter(|d| spec.attribute_visible(label, &d.name))
            .map(|d| d.name.clone())
            .collect();
        if !visible.is_empty() {
            attributes.insert(label.clone(), visible);
        }
    }
    Ok(SecurityView::new(root, deriver.productions, deriver.sigma).with_attributes(attributes))
}

/// How a child type is classified in the current context.
enum ChildClass {
    /// Accessible, possibly with a conditional qualifier.
    Acc(Option<Qualifier>),
    /// Inaccessible.
    Inacc,
}

struct Deriver<'a> {
    spec: &'a AccessSpec,
    visited_acc: HashSet<String>,
    visited_inacc: HashSet<String>,
    /// Inaccessible types whose `Proc_InAcc` call is on the stack
    /// (recursion detection).
    in_progress: HashSet<String>,
    productions: Vec<(String, ViewContent)>,
    sigma: BTreeMap<(String, String), Path>,
    /// `reg(A)` for processed inaccessible types.
    reg: HashMap<String, ViewContent>,
    /// `path[A, C]` for inaccessible `A` and each `C` in `reg(A)`.
    path_map: HashMap<(String, String), Path>,
    dummy_counter: usize,
    /// Dummy label assigned to a recursive inaccessible type.
    cycle_dummy: HashMap<String, String>,
    /// Dummy label assigned to a completed inaccessible type. One dummy
    /// per document type: σ cannot distinguish occurrences of the same
    /// label, so a repeated inaccessible child must map every occurrence
    /// to the *same* dummy (compacted to `dummy*`), not one dummy each —
    /// distinct dummies would each extract all occurrences and break
    /// materialization (and `//*` answers) on `A → B, …, B`.
    type_dummy: HashMap<String, String>,
}

impl<'a> Deriver<'a> {
    fn fresh_dummy(&mut self) -> String {
        self.dummy_counter += 1;
        format!("dummy{}", self.dummy_counter)
    }

    fn classify(&self, parent: &str, child: &str, parent_accessible: bool) -> ChildClass {
        match self.spec.annotation(parent, child) {
            Some(Annotation::Allow) => ChildClass::Acc(None),
            Some(Annotation::Cond(q)) => ChildClass::Acc(Some(q.clone())),
            Some(Annotation::Deny) => ChildClass::Inacc,
            None => {
                if parent_accessible {
                    ChildClass::Acc(None)
                } else {
                    ChildClass::Inacc
                }
            }
        }
    }

    /// σ/path entry for a directly accessible child: `B` or `B[q]`.
    fn child_path(child: &str, qual: Option<Qualifier>) -> Path {
        match qual {
            None => Path::label(child),
            Some(q) => Path::filter(Path::label(child), q),
        }
    }

    /// `Proc_Acc(S, A)`: build the view production for accessible `A`.
    fn proc_acc(&mut self, a: &str) {
        if !self.visited_acc.insert(a.to_string()) {
            return;
        }
        let production = self.spec.dtd().production(a).expect("declared type").clone();
        let content = match production {
            NormalContent::Str => ViewContent::Str,
            NormalContent::Empty => ViewContent::Empty,
            NormalContent::Seq(items) => self.build_seq(a, &items, true),
            NormalContent::Choice(items) => self.build_choice(a, &items, true),
            NormalContent::Star(item) => self.build_star(a, &item, true),
        };
        // Record σ for the production's children (collected during build
        // into self.sigma by `emit_*`); production order is completion
        // order, which is fine for the view DTD.
        self.productions.push((a.to_string(), content));
    }

    /// `Proc_InAcc(S, A)`: compute `reg(A)` and `path[A, ·]`.
    fn proc_inacc(&mut self, a: &str) {
        if !self.visited_inacc.insert(a.to_string()) {
            return;
        }
        self.in_progress.insert(a.to_string());
        let production = self.spec.dtd().production(a).expect("declared type").clone();
        let reg = match production {
            // Text under an inaccessible element is inaccessible: nothing
            // accessible below.
            NormalContent::Str | NormalContent::Empty => ViewContent::Empty,
            NormalContent::Seq(items) => self.build_seq(a, &items, false),
            NormalContent::Choice(items) => self.build_choice(a, &items, false),
            NormalContent::Star(item) => self.build_star(a, &item, false),
        };
        self.in_progress.remove(a);
        self.reg.insert(a.to_string(), reg.clone());
        // If a recursive reference created a dummy for `A`, its production
        // is `reg(A)` with σ taken from `path[A, ·]`.
        if let Some(dummy) = self.cycle_dummy.get(a).cloned() {
            for child in reg.child_types() {
                let p = self.path_map[&(a.to_string(), child.to_string())].clone();
                self.sigma.insert((dummy.clone(), child.to_string()), p);
            }
            self.productions.push((dummy, reg));
        }
    }

    /// Record an extraction query: into σ when the parent context is a
    /// view type (accessible or dummy), into `path` when it is an
    /// inaccessible document type.
    fn record(&mut self, acc_ctx: bool, parent: &str, child: &str, query: Path) {
        let key = (parent.to_string(), child.to_string());
        if acc_ctx {
            // Merging can only occur through compaction, handled before
            // recording; direct duplicates union defensively.
            match self.sigma.get(&key) {
                Some(existing) => {
                    let merged = Path::union(existing.clone(), query);
                    self.sigma.insert(key, merged);
                }
                None => {
                    self.sigma.insert(key, query);
                }
            }
        } else {
            match self.path_map.get(&key) {
                Some(existing) => {
                    let merged = Path::union(existing.clone(), query);
                    self.path_map.insert(key, merged);
                }
                None => {
                    self.path_map.insert(key, query);
                }
            }
        }
    }

    /// `path[B, C]` lookup for an already-processed inaccessible `B`.
    fn path_of(&self, b: &str, c: &str) -> Path {
        self.path_map[&(b.to_string(), c.to_string())].clone()
    }

    /// Handle `A → B1, …, Bn` (case 1 of Fig. 5). `acc_ctx` selects
    /// `Proc_Acc` (σ) vs `Proc_InAcc` (reg/path) behaviour.
    fn build_seq(&mut self, a: &str, items: &[String], acc_ctx: bool) -> ViewContent {
        let mut out: Vec<(ViewItem, Path)> = Vec::new();
        for b in items {
            match self.classify(a, b, acc_ctx) {
                ChildClass::Acc(qual) => {
                    out.push((ViewItem::One(b.clone()), Self::child_path(b, qual)));
                    self.proc_acc(b);
                }
                ChildClass::Inacc => self.handle_inacc_in_seq(a, b, &mut out),
            }
        }
        self.emit_items(a, out, acc_ctx)
    }

    /// An inaccessible `B` inside a concatenation: prune, short-cut, or
    /// dummy-rename (steps 10–20 of Fig. 5).
    fn handle_inacc_in_seq(&mut self, _a: &str, b: &str, out: &mut Vec<(ViewItem, Path)>) {
        if self.in_progress.contains(b) {
            // Recursive inaccessible node: rename to a dummy retained in
            // the expression; production filled when `B` completes.
            let dummy = self.cycle_dummy_for(b);
            out.push((ViewItem::One(dummy), Path::label(b)));
            return;
        }
        self.proc_inacc(b);
        match self.reg[b].clone() {
            ViewContent::Empty | ViewContent::Str => {} // prune
            ViewContent::Seq(sub_items) => {
                // Short-cut: reg(B) is a concatenation — splice it in.
                for item in sub_items {
                    let c = item.name().to_string();
                    let q = Path::step(Path::label(b), self.path_of(b, &c));
                    out.push((item, q));
                }
            }
            ViewContent::Star(c) => {
                // Extension of the compact form: a starred reg splices into
                // a concatenation as a starred particle (avoids a dummy
                // level for `A → …, B, …` with `reg(B) = C*`).
                let q = Path::step(Path::label(b), self.path_of(b, &c));
                out.push((ViewItem::Many(c), q));
            }
            reg_b @ ViewContent::Choice { .. } => {
                // Shape mismatch: rename to a dummy.
                let dummy = self.dummy_for_type(b, reg_b);
                out.push((ViewItem::One(dummy), Path::label(b)));
            }
        }
    }

    /// Handle `A → B1 + … + Bn` (case 2 of Fig. 5).
    fn build_choice(&mut self, a: &str, items: &[String], acc_ctx: bool) -> ViewContent {
        let mut alternatives: Vec<(String, Path)> = Vec::new();
        let mut optional = false;
        for b in items {
            match self.classify(a, b, acc_ctx) {
                ChildClass::Acc(qual) => {
                    alternatives.push((b.clone(), Self::child_path(b, qual)));
                    self.proc_acc(b);
                }
                ChildClass::Inacc => {
                    if self.in_progress.contains(b) {
                        let dummy = self.cycle_dummy_for(b);
                        alternatives.push((dummy, Path::label(b)));
                        continue;
                    }
                    self.proc_inacc(b);
                    match self.reg[b].clone() {
                        ViewContent::Empty | ViewContent::Str => optional = true, // pruned branch
                        ViewContent::Choice { alternatives: sub, optional: sub_opt } => {
                            // Short-cut: disjunction into disjunction.
                            optional |= sub_opt;
                            for c in sub {
                                let q = Path::step(Path::label(b), self.path_of(b, &c));
                                alternatives.push((c, q));
                            }
                        }
                        reg_b @ (ViewContent::Seq(_) | ViewContent::Star(_)) => {
                            let dummy = self.dummy_for_type(b, reg_b);
                            alternatives.push((dummy, Path::label(b)));
                        }
                    }
                }
            }
        }
        if alternatives.is_empty() {
            return ViewContent::Empty;
        }
        // Merge duplicate alternatives by σ-union.
        let mut merged: Vec<(String, Path)> = Vec::new();
        for (name, q) in alternatives {
            if let Some(slot) = merged.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = Path::union(slot.1.clone(), q);
            } else {
                merged.push((name, q));
            }
        }
        for (name, q) in &merged {
            self.record(acc_ctx, a, name, q.clone());
        }
        ViewContent::Choice { alternatives: merged.into_iter().map(|(n, _)| n).collect(), optional }
    }

    /// Handle `A → B*` (case 3 of Fig. 5).
    fn build_star(&mut self, a: &str, b: &str, acc_ctx: bool) -> ViewContent {
        match self.classify(a, b, acc_ctx) {
            ChildClass::Acc(qual) => {
                self.record(acc_ctx, a, b, Self::child_path(b, qual));
                self.proc_acc(b);
                ViewContent::Star(b.to_string())
            }
            ChildClass::Inacc => {
                if self.in_progress.contains(b) {
                    let dummy = self.cycle_dummy_for(b);
                    self.record(acc_ctx, a, &dummy, Path::label(b));
                    return ViewContent::Star(dummy);
                }
                self.proc_inacc(b);
                match self.reg[b].clone() {
                    ViewContent::Empty | ViewContent::Str => ViewContent::Empty,
                    // `reg(B)` is `C` or `C*`: collapse under the star.
                    ViewContent::Seq(items) if items.len() == 1 => {
                        let c = items[0].name().to_string();
                        let q = Path::step(Path::label(b), self.path_of(b, &c));
                        self.record(acc_ctx, a, &c, q);
                        ViewContent::Star(c)
                    }
                    ViewContent::Star(c) => {
                        let q = Path::step(Path::label(b), self.path_of(b, &c));
                        self.record(acc_ctx, a, &c, q);
                        ViewContent::Star(c)
                    }
                    reg_b => {
                        let dummy = self.dummy_for_type(b, reg_b);
                        self.record(acc_ctx, a, &dummy, Path::label(b));
                        ViewContent::Star(dummy)
                    }
                }
            }
        }
    }

    /// Compact duplicate labels in a concatenation (Example 3.4's "more
    /// compact form") and record the extraction queries.
    fn emit_items(&mut self, a: &str, items: Vec<(ViewItem, Path)>, acc_ctx: bool) -> ViewContent {
        if items.is_empty() {
            return ViewContent::Empty;
        }
        let mut merged: Vec<(ViewItem, Path)> = Vec::new();
        for (item, q) in items {
            if let Some(slot) = merged.iter_mut().find(|(m, _)| m.name() == item.name()) {
                // Duplicate label: merge into a starred particle with a
                // σ-union.
                slot.0 = ViewItem::Many(item.name().to_string());
                slot.1 = Path::union(slot.1.clone(), q);
            } else {
                merged.push((item, q));
            }
        }
        for (item, q) in &merged {
            self.record(acc_ctx, a, item.name(), q.clone());
        }
        ViewContent::Seq(merged.into_iter().map(|(i, _)| i).collect())
    }

    /// The dummy renaming an inaccessible type `B`, minting (and emitting
    /// the `dummy → reg(B)` production) on first use. Reuses the cycle
    /// dummy when recursion already named `B`, whose production is emitted
    /// by `proc_inacc` on completion.
    fn dummy_for_type(&mut self, b: &str, reg_b: ViewContent) -> String {
        if let Some(d) = self.cycle_dummy.get(b) {
            return d.clone();
        }
        if let Some(d) = self.type_dummy.get(b) {
            return d.clone();
        }
        let d = self.fresh_dummy();
        self.type_dummy.insert(b.to_string(), d.clone());
        self.emit_dummy(&d, b, reg_b);
        d
    }

    /// Add the view production `dummy → reg(B)` with σ from `path[B, ·]`.
    fn emit_dummy(&mut self, dummy: &str, b: &str, reg_b: ViewContent) {
        for child in reg_b.child_types() {
            let p = self.path_of(b, child);
            self.sigma.insert((dummy.to_string(), child.to_string()), p);
        }
        self.productions.push((dummy.to_string(), reg_b));
    }

    fn cycle_dummy_for(&mut self, b: &str) -> String {
        if let Some(d) = self.cycle_dummy.get(b) {
            return d.clone();
        }
        let d = self.fresh_dummy();
        self.cycle_dummy.insert(b.to_string(), d.clone());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sxv_dtd::parse_dtd;

    fn hospital_dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    fn nurse_spec() -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    /// Example 3.2 / 3.4: the nurse view.
    #[test]
    fn nurse_view_matches_paper() {
        let view = derive_view(&nurse_spec()).unwrap();
        assert_eq!(view.root(), "hospital");
        // hospital → dept*, σ = dept[q1]
        assert_eq!(view.production("hospital"), Some(&ViewContent::Star("dept".into())));
        assert_eq!(
            view.sigma("hospital", "dept").unwrap().to_string(),
            "dept[*/patient/wardNo='6']"
        );
        // dept → patientInfo*, staffInfo (compact form)
        assert_eq!(
            view.production("dept"),
            Some(&ViewContent::Seq(vec![
                ViewItem::Many("patientInfo".into()),
                ViewItem::One("staffInfo".into()),
            ]))
        );
        // σ(dept, patientInfo) = clinicalTrial/patientInfo ∪ patientInfo
        // (the paper factors this as (clinicalTrial ∪ ε)/patientInfo).
        assert_eq!(
            view.sigma("dept", "patientInfo").unwrap().to_string(),
            "clinicalTrial/patientInfo | patientInfo"
        );
        // treatment → dummy1 + dummy2 with σ = trial / regular.
        match view.production("treatment") {
            Some(ViewContent::Choice { alternatives, optional }) => {
                assert_eq!(alternatives.len(), 2);
                assert!(!optional);
                assert!(alternatives.iter().all(|a| SecurityView::is_dummy(a)));
                let d1 = &alternatives[0];
                let d2 = &alternatives[1];
                assert_eq!(view.sigma("treatment", d1).unwrap().to_string(), "trial");
                assert_eq!(view.sigma("treatment", d2).unwrap().to_string(), "regular");
                // dummy productions: dummy1 → bill; dummy2 → bill, medication
                assert_eq!(
                    view.production(d1),
                    Some(&ViewContent::Seq(vec![ViewItem::One("bill".into())]))
                );
                assert_eq!(
                    view.production(d2),
                    Some(&ViewContent::Seq(vec![
                        ViewItem::One("bill".into()),
                        ViewItem::One("medication".into())
                    ]))
                );
                assert_eq!(view.sigma(d1, "bill").unwrap().to_string(), "bill");
                assert_eq!(view.sigma(d2, "medication").unwrap().to_string(), "medication");
            }
            other => panic!("expected choice of dummies, got {other:?}"),
        }
        // Hidden labels never appear as view types.
        for hidden in ["clinicalTrial", "trial", "regular", "test"] {
            assert!(view.production(hidden).is_none(), "{hidden} must be hidden");
        }
        // Untouched region copied verbatim.
        assert_eq!(view.production("staff").map(|c| c.to_string()), Some("doctor + nurse".into()));
        assert_eq!(view.sigma("staff", "doctor").unwrap().to_string(), "doctor");
    }

    #[test]
    fn empty_spec_view_mirrors_dtd() {
        let dtd = hospital_dtd();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.len(), dtd.len());
        for (name, _) in dtd.productions() {
            assert!(view.production(name).is_some(), "{name} missing");
        }
        assert_eq!(view.sigma("dept", "clinicalTrial").unwrap().to_string(), "clinicalTrial");
    }

    #[test]
    fn deny_leaf_without_accessible_descendants_pruned() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "b").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Seq(vec![ViewItem::One("a".into())])));
        assert!(view.production("b").is_none());
        assert!(view.sigma("r", "b").is_none());
    }

    #[test]
    fn shortcut_chain_of_inaccessible_nodes() {
        // r → x (N); x → y (N by inheritance); y → a: reg chains to a with
        // path x/y/a.
        let dtd = parse_dtd(
            "<!ELEMENT r (x)><!ELEMENT x (y)><!ELEMENT y (a)><!ELEMENT a (#PCDATA)>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "x").allow("y", "a").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Seq(vec![ViewItem::One("a".into())])));
        assert_eq!(view.sigma("r", "a").unwrap().to_string(), "x/y/a");
        assert!(view.production("x").is_none());
        assert!(view.production("y").is_none());
    }

    #[test]
    fn pruned_choice_branch_becomes_optional() {
        // t → x + y; x denied with no accessible descendants.
        let dtd =
            parse_dtd("<!ELEMENT t (x | y)><!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>", "t")
                .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("t", "x").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(
            view.production("t"),
            Some(&ViewContent::Choice { alternatives: vec!["y".into()], optional: true })
        );
    }

    #[test]
    fn choice_into_choice_shortcut() {
        // t → x + c ; x (N) → a + b : inline to t → a + b + c.
        let dtd = parse_dtd(
            "<!ELEMENT t (x | c)><!ELEMENT x (a | b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY><!ELEMENT c EMPTY>",
            "t",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .deny("t", "x")
            .allow("x", "a")
            .allow("x", "b")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        match view.production("t") {
            Some(ViewContent::Choice { alternatives, optional }) => {
                assert_eq!(alternatives, &["a".to_string(), "b".to_string(), "c".to_string()]);
                assert!(!optional);
            }
            other => panic!("expected choice, got {other:?}"),
        }
        assert_eq!(view.sigma("t", "a").unwrap().to_string(), "x/a");
        assert_eq!(view.sigma("t", "c").unwrap().to_string(), "c");
    }

    #[test]
    fn star_with_single_accessible_descendant_collapses() {
        // r → x*; x (N) → a: r → a* with σ = x/a.
        let dtd =
            parse_dtd("<!ELEMENT r (x*)><!ELEMENT x (a)><!ELEMENT a (#PCDATA)>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "x").allow("x", "a").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Star("a".into())));
        assert_eq!(view.sigma("r", "a").unwrap().to_string(), "x/a");
    }

    #[test]
    fn star_with_multi_descendants_gets_dummy() {
        // r → x*; x (N) → a, b: r → dummy1* with dummy1 → a, b.
        let dtd = parse_dtd(
            "<!ELEMENT r (x*)><!ELEMENT x (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .deny("r", "x")
            .allow("x", "a")
            .allow("x", "b")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        match view.production("r") {
            Some(ViewContent::Star(d)) => {
                assert!(SecurityView::is_dummy(d));
                assert_eq!(
                    view.production(d),
                    Some(&ViewContent::Seq(vec![
                        ViewItem::One("a".into()),
                        ViewItem::One("b".into())
                    ]))
                );
                assert_eq!(view.sigma("r", d).unwrap().to_string(), "x");
                assert_eq!(view.sigma(d, "a").unwrap().to_string(), "a");
            }
            other => panic!("expected star of dummy, got {other:?}"),
        }
    }

    #[test]
    fn conditional_child_of_inaccessible_parent_keeps_qualifier() {
        // r → x (N); x → a with [q]: σ(r, a) = x/a[q].
        let dtd = parse_dtd(
            "<!ELEMENT r (x)><!ELEMENT x (a)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .deny("r", "x")
            .cond_str("x", "a", "b='1'")
            .unwrap()
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.sigma("r", "a").unwrap().to_string(), "x/a[b='1']");
    }

    #[test]
    fn recursive_inaccessible_region_keeps_structure_via_dummy() {
        // a → b, c ; b (N) → a, d : reg(b) references a (accessible) and,
        // through recursion, b again — the paper's Fig. 7(c) pattern:
        // the view must stay recursive through a dummy.
        let dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (a, d)><!ELEMENT c EMPTY><!ELEMENT d EMPTY>",
            "a",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("a", "b").allow("b", "a").build().unwrap();
        let view = derive_view(&spec).unwrap();
        // reg(b) = (a) with path b→a = a; d inherits inaccessibility and is
        // pruned; the shortcut into a's concatenation keeps the recursion:
        assert_eq!(
            view.production("a"),
            Some(&ViewContent::Seq(vec![ViewItem::One("a".into()), ViewItem::One("c".into()),]))
        );
        assert_eq!(view.sigma("a", "a").unwrap().to_string(), "b/a");
        assert!(view.is_recursive());
    }

    #[test]
    fn recursive_cycle_fully_inaccessible_gets_cycle_dummy() {
        // a → x, c ; x (N) → x?, d... modelled with choice recursion:
        // x (N) → y + d ; y (N) → x ; d accessible.
        let dtd = parse_dtd(
            "<!ELEMENT a (x, c)><!ELEMENT x (y | d)><!ELEMENT y (x)><!ELEMENT d EMPTY><!ELEMENT c EMPTY>",
            "a",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("a", "x").allow("x", "d").build().unwrap();
        let view = derive_view(&spec).unwrap();
        // x's reg: choice of (via y: cycle dummy for x) and d.
        // The dummy for the cycle must exist as a view production.
        let dummies: Vec<&str> = view
            .productions()
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| SecurityView::is_dummy(n))
            .collect();
        assert!(!dummies.is_empty(), "cycle dummy expected; got {:?}", view.productions());
        assert!(view.is_recursive(), "recursive structure retained");
    }

    #[test]
    fn conditional_child_under_choice_parent() {
        let dtd =
            parse_dtd("<!ELEMENT t (x | y)><!ELEMENT x (#PCDATA)><!ELEMENT y (#PCDATA)>", "t")
                .unwrap();
        let spec =
            AccessSpec::builder(&dtd).cond_str("t", "x", ".='keep'").unwrap().build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.sigma("t", "x").unwrap().to_string(), "x[.='keep']");
        assert_eq!(view.sigma("t", "y").unwrap().to_string(), "y");
    }

    #[test]
    fn conditional_child_under_star_parent() {
        let dtd =
            parse_dtd("<!ELEMENT r (a*)><!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).cond_str("r", "a", "b='v'").unwrap().build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Star("a".into())));
        assert_eq!(view.sigma("r", "a").unwrap().to_string(), "a[b='v']");
    }

    #[test]
    fn deny_everything_leaves_empty_root() {
        let dtd = parse_dtd("<!ELEMENT r (a, b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>", "r")
            .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "a").deny("r", "b").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Empty));
        assert_eq!(view.len(), 1, "only the root type survives");
    }

    #[test]
    fn str_root_view() {
        let dtd = parse_dtd("<!ELEMENT r (#PCDATA)>", "r").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(view.production("r"), Some(&ViewContent::Str));
    }

    #[test]
    fn star_reg_inlines_into_concatenation_as_many() {
        // r → x, c ; x (N) → a* : r → a*, c with σ(r, a) = x/a.
        let dtd = parse_dtd(
            "<!ELEMENT r (x, c)><!ELEMENT x (a*)><!ELEMENT a (#PCDATA)><!ELEMENT c EMPTY>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("r", "x").allow("x", "a").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(
            view.production("r"),
            Some(&ViewContent::Seq(vec![ViewItem::Many("a".into()), ViewItem::One("c".into())]))
        );
        assert_eq!(view.sigma("r", "a").unwrap().to_string(), "x/a");
    }

    #[test]
    fn shortcut_through_denied_clinical_trial_keeps_all_descendants() {
        // The `//*` regression spec: dept's clinicalTrial is denied but its
        // patientInfo and test children are re-allowed. Proc_InAcc must
        // splice both into dept's concatenation (merging the duplicate
        // patientInfo into a starred particle) without dropping `test` or
        // leaking `clinicalTrial`.
        let spec = AccessSpec::builder(&hospital_dtd())
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .allow("clinicalTrial", "test")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        assert_eq!(
            view.production("dept"),
            Some(&ViewContent::Seq(vec![
                ViewItem::Many("patientInfo".into()),
                ViewItem::One("test".into()),
                ViewItem::One("staffInfo".into()),
            ]))
        );
        assert_eq!(
            view.sigma("dept", "patientInfo").unwrap().to_string(),
            "clinicalTrial/patientInfo | patientInfo"
        );
        assert_eq!(view.sigma("dept", "test").unwrap().to_string(), "clinicalTrial/test");
        assert!(view.production("clinicalTrial").is_none(), "denied label must be hidden");
        // Every accessible type is reachable in the view — nothing dropped.
        for kept in ["patientInfo", "patient", "test", "staffInfo", "treatment"] {
            assert!(view.production(kept).is_some(), "{kept} dropped from view");
        }
    }

    #[test]
    fn repeated_inaccessible_child_shares_one_dummy() {
        // r → x, x with x denied and reg(x) a choice: σ cannot tell the two
        // x occurrences apart, so both must rename to the *same* dummy,
        // compacted to `dummy*`. Per-occurrence dummies would each extract
        // both occurrences — materialization aborts and `//*` answers
        // diverge.
        let dtd = parse_dtd(
            "<!ELEMENT r (x, x)><!ELEMENT x (a | b)><!ELEMENT a (#PCDATA)><!ELEMENT b (#PCDATA)>",
            "r",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd)
            .deny("r", "x")
            .allow("x", "a")
            .allow("x", "b")
            .build()
            .unwrap();
        let view = derive_view(&spec).unwrap();
        let dummies: Vec<&str> = view
            .productions()
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| SecurityView::is_dummy(n))
            .collect();
        assert_eq!(dummies.len(), 1, "one dummy per hidden type, got {dummies:?}");
        let d = dummies[0];
        assert_eq!(view.production("r"), Some(&ViewContent::Seq(vec![ViewItem::Many(d.into())])));
        assert_eq!(view.sigma("r", d).unwrap().to_string(), "x");
        assert_eq!(
            view.production(d),
            Some(&ViewContent::Choice {
                alternatives: vec!["a".into(), "b".into()],
                optional: false
            })
        );
    }

    #[test]
    fn quadratic_visits_large_dtd_fast() {
        // A wide DTD with every other child denied; derive must touch each
        // type O(1) times per mode.
        let mut src = String::from("<!ELEMENT r (");
        let n = 200;
        for i in 0..n {
            if i > 0 {
                src.push_str(", ");
            }
            src.push_str(&format!("e{i}"));
        }
        src.push_str(")>");
        for i in 0..n {
            src.push_str(&format!("<!ELEMENT e{i} (leaf{i})><!ELEMENT leaf{i} (#PCDATA)>"));
        }
        let dtd = parse_dtd(&src, "r").unwrap();
        let mut builder = AccessSpec::builder(&dtd);
        for i in (0..n).step_by(2) {
            let parent = "r".to_string();
            let child = format!("e{i}");
            builder = builder.deny(&parent, &child);
            let leaf_parent = format!("e{i}");
            let leaf = format!("leaf{i}");
            builder = builder.allow(&leaf_parent, &leaf);
        }
        let spec = builder.build().unwrap();
        let view = derive_view(&spec).unwrap();
        // Denied e_i are shortcut to leaf_i.
        assert!(view.production("e0").is_none());
        assert!(view.production("leaf0").is_some());
        assert!(view.production("e1").is_some());
        assert_eq!(view.sigma("r", "leaf0").unwrap().to_string(), "e0/leaf0");
    }
}

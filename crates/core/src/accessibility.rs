//! Document-node accessibility — §3.2 of the paper.
//!
//! Given an instance `T` of `D` and a specification `S = (D, ann)`, a node
//! `v` (with parent label `A`, own label `B`, so `ann(v) = ann(A, B)`) is
//! **accessible** iff
//!
//! 1. `ann(v) = Y`, or `ann(v) = [q]` and `q` holds at `v`, **and** for
//!    every ancestor `v'` with `ann(v') = [q']`, `q'` holds at `v'`; or
//! 2. `ann(v)` is not explicitly defined and `v`'s parent is accessible.
//!
//! The root is accessible (annotated `Y` by default). Note that `N` does
//! *not* poison a subtree — an explicitly allowed descendant of a denied
//! node is accessible (that is what makes short-cutting in `derive`
//! meaningful) — but a *false qualifier* does, because rule 1 requires all
//! ancestor qualifiers to hold.

use crate::spec::{AccessSpec, Annotation};
use sxv_xml::{DocIndex, Document, NodeBitmap, NodeId};
use sxv_xpath::eval_qualifier_indexed;

/// Per-node accessibility, indexed by [`NodeId::index`].
#[derive(Debug, Clone)]
pub struct Accessibility {
    flags: NodeBitmap,
}

impl Accessibility {
    /// Is `id` accessible?
    pub fn is_accessible(&self, id: NodeId) -> bool {
        self.flags.contains(id)
    }

    /// Ids of all accessible nodes, in document order.
    pub fn accessible_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.flags.iter()
    }

    /// Number of accessible nodes.
    pub fn count(&self) -> usize {
        self.flags.count_ones()
    }

    /// The underlying accessibility bitmap.
    pub fn bitmap(&self) -> &NodeBitmap {
        &self.flags
    }
}

/// Compute the accessibility of every node of `doc` w.r.t. `spec`
/// (Prop. 3.1: uniquely defined for every node).
pub fn compute(spec: &AccessSpec, doc: &Document) -> Accessibility {
    Accessibility { flags: compute_accessibility(spec, doc, None) }
}

/// Compute the §3.2 accessibility of every node as a dense [`NodeBitmap`]
/// in one pre-order pass: each edge annotation is evaluated once per
/// node, inheritance and overriding propagate down the traversal stack,
/// and qualifier probes use the structural index when one is given.
pub fn compute_accessibility(
    spec: &AccessSpec,
    doc: &Document,
    index: Option<&DocIndex>,
) -> NodeBitmap {
    let mut flags = NodeBitmap::new(doc.len());
    let Some(root) = doc.root_opt() else {
        return flags;
    };
    // Stack entries: (node, parent_accessible, ancestor_qualifiers_ok).
    let mut stack: Vec<(NodeId, bool, bool)> = vec![(root, true, true)];
    // The root itself: annotated Y by default, no ancestors.
    while let Some((v, parent_accessible, anc_ok)) = stack.pop() {
        let (accessible, own_qual_ok) = classify(spec, doc, index, v, parent_accessible, anc_ok);
        if accessible {
            flags.set(v);
        }
        let child_anc_ok = anc_ok && own_qual_ok;
        for &c in doc.children(v) {
            stack.push((c, accessible, child_anc_ok));
        }
    }
    flags
}

/// Returns `(accessible, own qualifier holds or absent)`.
fn classify(
    spec: &AccessSpec,
    doc: &Document,
    index: Option<&DocIndex>,
    v: NodeId,
    parent_accessible: bool,
    anc_ok: bool,
) -> (bool, bool) {
    let Some(parent) = doc.parent(v) else {
        // Root: Y by default.
        return (true, true);
    };
    // Text nodes inherit from their element parent (the paper's `str`
    // children carry no annotation key of their own in our model).
    let Some(label) = doc.label_opt(v) else {
        return (parent_accessible, true);
    };
    let parent_label = doc.label_opt(parent).unwrap_or_default();
    match spec.annotation(parent_label, label) {
        None => (parent_accessible, true),
        Some(Annotation::Allow) => (anc_ok, true),
        Some(Annotation::Deny) => (false, true),
        Some(Annotation::Cond(q)) => {
            let holds = eval_qualifier_indexed(doc, index, q, v);
            (anc_ok && holds, holds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AccessSpec;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;

    fn hospital_dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    fn nurse_spec(ward: &str) -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", ward)
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    fn doc() -> Document {
        parse_xml(
            r#"<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Ann</name><wardNo>6</wardNo>
          <treatment><trial><bill>100</bill></trial></treatment>
        </patient>
      </patientInfo>
      <test>t1</test>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>6</wardNo>
        <treatment><regular><bill>70</bill><medication>m1</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Sue</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo/><test>t2</test></clinicalTrial>
    <patientInfo>
      <patient><name>Cat</name><wardNo>7</wardNo>
        <treatment><regular><bill>30</bill><medication>m2</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo/>
  </dept>
</hospital>"#,
        )
        .unwrap()
    }

    fn find(doc: &Document, label: &str) -> Vec<NodeId> {
        doc.all_ids().filter(|&i| doc.label_opt(i) == Some(label)).collect()
    }

    #[test]
    fn root_always_accessible() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        assert!(acc.is_accessible(d.root().unwrap()));
    }

    #[test]
    fn deny_blocks_node_but_not_allowed_descendants() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        let trials = find(&d, "clinicalTrial");
        // First dept matches ward 6; its clinicalTrial node itself is N.
        assert!(!acc.is_accessible(trials[0]));
        // But the patientInfo *inside* it is explicitly Y → accessible.
        let inner_pi = d
            .children(trials[0])
            .iter()
            .copied()
            .find(|&c| d.label_opt(c) == Some("patientInfo"))
            .unwrap();
        assert!(acc.is_accessible(inner_pi));
        // test is N with no accessible descendants.
        let inner_test = d
            .children(trials[0])
            .iter()
            .copied()
            .find(|&c| d.label_opt(c) == Some("test"))
            .unwrap();
        assert!(!acc.is_accessible(inner_test));
    }

    #[test]
    fn false_ancestor_qualifier_poisons_subtree() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        let depts = find(&d, "dept");
        assert!(acc.is_accessible(depts[0]), "ward-6 dept matches the qualifier");
        assert!(!acc.is_accessible(depts[1]), "ward-7 dept fails the qualifier");
        // Everything under the failing dept is inaccessible, even nodes
        // whose own annotation is Y (clinicalTrial/patientInfo).
        let trials = find(&d, "clinicalTrial");
        let second_pi = d
            .children(trials[1])
            .iter()
            .copied()
            .find(|&c| d.label_opt(c) == Some("patientInfo"))
            .unwrap();
        assert!(!acc.is_accessible(second_pi));
        let cat = find(&d, "name").iter().copied().find(|&n| d.string_value(n) == "Cat");
        assert!(!acc.is_accessible(cat.unwrap()));
    }

    #[test]
    fn inheritance_follows_parent() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        // staffInfo has no annotation anywhere → inherits dept.
        let staff_infos = find(&d, "staffInfo");
        assert!(acc.is_accessible(staff_infos[0]));
        assert!(!acc.is_accessible(staff_infos[1]));
        // trial/regular are denied; their bill children are Y.
        for trial in find(&d, "trial") {
            assert!(!acc.is_accessible(trial));
        }
        let bills = find(&d, "bill");
        assert!(acc.is_accessible(bills[0]), "bill under accessible dept");
        assert!(acc.is_accessible(bills[1]));
        assert!(!acc.is_accessible(bills[2]), "bill under ward-7 dept");
    }

    #[test]
    fn text_nodes_inherit_parent() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        let bills = find(&d, "bill");
        let text = d.children(bills[0])[0];
        assert!(acc.is_accessible(text));
        let blocked_text = d.children(bills[2])[0];
        assert!(!acc.is_accessible(blocked_text));
    }

    #[test]
    fn accessible_ids_sorted_and_counted() {
        let d = doc();
        let acc = compute(&nurse_spec("6"), &d);
        let ids: Vec<_> = acc.accessible_ids().collect();
        assert_eq!(ids.len(), acc.count());
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert!(acc.count() > 0);
        assert!(acc.count() < d.len());
    }

    #[test]
    fn empty_spec_grants_everything() {
        let d = doc();
        let spec = AccessSpec::builder(&hospital_dtd()).build().unwrap();
        let acc = compute(&spec, &d);
        assert_eq!(acc.count(), d.len());
    }

    #[test]
    fn indexed_bitmap_matches_unindexed() {
        let d = doc();
        let idx = sxv_xml::DocIndex::new(&d).unwrap();
        for spec in [nurse_spec("6"), nurse_spec("7")] {
            let plain = compute_accessibility(&spec, &d, None);
            let indexed = compute_accessibility(&spec, &d, Some(&idx));
            assert_eq!(plain.to_ids(), indexed.to_ids());
            assert_eq!(plain.count_ones(), compute(&spec, &d).count());
        }
    }

    #[test]
    fn empty_document_handled() {
        let spec = AccessSpec::builder(&hospital_dtd()).build().unwrap();
        let acc = compute(&spec, &Document::new());
        assert_eq!(acc.count(), 0);
    }
}

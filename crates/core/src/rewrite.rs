//! Algorithm `rewrite` — §4, Fig. 6 of the paper.
//!
//! Transforms an XPath query `p` posed over a security view into an
//! equivalent query `p_t` over the original document, so that
//! `p(T_v) = p_t(T)` for every instance `T` — querying the view without
//! ever materializing it.
//!
//! The dynamic program computes, for every sub-query `p'` and view-DTD
//! node `A`, the *local translation* of `p'` at `A`. Two refinements over
//! the letter of Fig. 6:
//!
//! * **Per-target tables.** Fig. 6 stores one `rw(p', A)` and one
//!   `reach(p', A)` set, and combines steps as
//!   `rw(p1, A) / (∪_v rw(p2, v))`, which can apply a `v`-specific
//!   continuation underneath a different type's image when two view types
//!   share a child label with different σ annotations. We table
//!   translations per *target* node — `rw(p', A) : target ↦ query` — so
//!   every composed fragment is evaluated in the context it was translated
//!   for. The verbatim merge is available as [`rewrite_paper_merge`]; the
//!   two coincide whenever no reachable view types share a child label
//!   (true for all examples in the paper).
//! * **`recProc`** (precomputation for `//`) follows the paper exactly:
//!   symbolic per-node accumulation over the DAG in topological order, so
//!   each intermediate node's path expression is built once and reused
//!   (`recrw(a, g) = (l_b ∪ ε)/l_c/(l_e ∪ l_f)/l_g` for Fig. 7(a)).
//!
//! **Recursive views** (§4.2): over a cyclic view DTD `//` has
//! infinitely many σ-paths, and the paper observes the finite-union
//! translation fails — the answer is a *regular* path expression like
//! `(a/c)*/b`, beyond standard XPath. Our query language carries the
//! Kleene closure operator (`Path::Closure`), so [`rewrite`] handles
//! recursive views directly: `recProc` falls back from the DAG
//! topological accumulation to Kleene state elimination
//! (McNaughton–Yamada) whose loop expressions become `(…)*` closures,
//! executed natively by the plan layer's `closure-expand` operator.
//! [`rewrite_with_height`] (unfolding to the document height, §4.2's
//! original workaround) is retained as a differential-testing oracle.

use crate::error::{Error, Result};
use crate::view::def::{SecurityView, ViewContent, ViewItem};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use sxv_xpath::{factored_union, simplify, Path, Qualifier};

/// Rewrite a view query to a document query. Recursive views are
/// handled directly: cycles in the view DTD graph translate to Kleene
/// closures (`(…)*`) instead of requiring height-bounded unfolding.
pub fn rewrite(view: &SecurityView, p: &Path) -> Result<Path> {
    let graph = ViewGraph::from_view(view)?;
    graph.rewrite(p)
}

/// Rewrite over a (possibly recursive) view by unfolding to `height` —
/// §4.2's original workaround. Kept as a differential-testing oracle
/// for the direct closure-based translation; also valid for
/// non-recursive views (where it simply bounds the DAG).
pub fn rewrite_with_height(view: &SecurityView, p: &Path, height: usize) -> Result<Path> {
    let graph = ViewGraph::unfolded(view, height)?;
    graph.rewrite(p)
}

/// The verbatim Fig. 6 combination (single merged `reach`/`rw` per
/// sub-query) — kept for comparison benchmarks and paper-fidelity tests.
pub fn rewrite_paper_merge(view: &SecurityView, p: &Path) -> Result<Path> {
    let graph = ViewGraph::from_view(view)?;
    graph.rewrite_merged(p)
}

/// A DAG over view-DTD nodes with σ-labelled edges — the structure both
/// rewriting variants run on. Node 0 is the virtual *document node* (its
/// only child is the view root), so absolute queries translate naturally.
#[derive(Debug)]
pub struct ViewGraph {
    labels: Vec<String>,
    children: Vec<Vec<usize>>,
    sigma: HashMap<(usize, usize), Path>,
    /// Visible attributes per node (attribute-level access control —
    /// hidden attributes make `[@a]` qualifiers false over the view).
    attrs: Vec<Vec<String>>,
    /// Per node: does its production allow text children (`str`)?
    has_text: Vec<bool>,
    doc_node: usize,
    root: usize,
}

impl ViewGraph {
    /// Build directly from a view. Recursive views yield a cyclic
    /// graph, which `recProc` handles via Kleene state elimination.
    pub fn from_view(view: &SecurityView) -> Result<Self> {
        let mut labels: Vec<String> = vec![String::new()]; // 0 = document node
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (name, _) in view.productions() {
            index.insert(name, labels.len());
            labels.push(name.clone());
        }
        let mut children = vec![Vec::new(); labels.len()];
        let mut sigma = HashMap::new();
        let root = *index
            .get(view.root())
            .ok_or_else(|| Error::NoView("view has no root production".into()))?;
        children[0].push(root);
        sigma.insert((0, root), Path::label(view.root()));
        for (name, content) in view.productions() {
            let a = index[name.as_str()];
            for child in content.child_types() {
                let b = *index
                    .get(child)
                    .ok_or_else(|| Error::NoView(format!("undeclared view type {child}")))?;
                children[a].push(b);
                let q = view
                    .sigma(name, child)
                    .ok_or_else(|| Error::NoView(format!("missing σ({name}, {child})")))?
                    .clone();
                sigma.insert((a, b), q);
            }
        }
        let attrs = labels.iter().map(|l| view.visible_attributes(l).to_vec()).collect();
        let has_text =
            labels.iter().map(|l| matches!(view.production(l), Some(ViewContent::Str))).collect();
        Ok(ViewGraph { labels, children, sigma, attrs, has_text, doc_node: 0, root })
    }

    /// Build by unfolding the (possibly recursive) view DTD to `height`.
    pub fn unfolded(view: &SecurityView, height: usize) -> Result<Self> {
        let min_heights = view_min_heights(view);
        let fits = |name: &str, depth: usize| {
            min_heights.get(name).map(|&h| h != usize::MAX && depth + h <= height).unwrap_or(false)
        };
        if !fits(view.root(), 0) {
            return Err(Error::UnfoldImpossible { height });
        }
        let mut labels: Vec<String> = vec![String::new()];
        let mut children: Vec<Vec<usize>> = vec![Vec::new()];
        let mut sigma = HashMap::new();
        let mut index: HashMap<(String, usize), usize> = HashMap::new();
        let root_key = (view.root().to_string(), 0usize);
        index.insert(root_key.clone(), 1);
        labels.push(view.root().to_string());
        children.push(Vec::new());
        children[0].push(1);
        sigma.insert((0usize, 1usize), Path::label(view.root()));
        let mut work = vec![1usize];
        let mut keys = vec![root_key];
        while let Some(n) = work.pop() {
            let (name, depth) = keys[n - 1].clone();
            let production = view.production(&name).expect("declared view type");
            for child in production.child_types() {
                if !fits(child, depth + 1) {
                    continue;
                }
                let key = (child.to_string(), depth + 1);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = labels.len();
                        index.insert(key.clone(), id);
                        keys.push(key);
                        labels.push(child.to_string());
                        children.push(Vec::new());
                        work.push(id);
                        id
                    }
                };
                children[n].push(id);
                let q = view
                    .sigma(&name, child)
                    .ok_or_else(|| Error::NoView(format!("missing σ({name}, {child})")))?
                    .clone();
                sigma.insert((n, id), q);
            }
        }
        let attrs = labels.iter().map(|l| view.visible_attributes(l).to_vec()).collect();
        let has_text =
            labels.iter().map(|l| matches!(view.production(l), Some(ViewContent::Str))).collect();
        Ok(ViewGraph { labels, children, sigma, attrs, has_text, doc_node: 0, root: 1 })
    }

    /// Build from a document DTD with identity σ (each edge annotated by
    /// its child label). Used by the §5 optimizer, which "evaluates"
    /// queries over the document-DTD graph the same way rewriting
    /// evaluates them over the view-DTD graph.
    pub fn from_dtd(dtd: &sxv_dtd::Dtd) -> Self {
        let mut labels: Vec<String> = vec![String::new()];
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (name, _) in dtd.productions() {
            index.insert(name, labels.len());
            labels.push(name.clone());
        }
        let mut children = vec![Vec::new(); labels.len()];
        let mut sigma = HashMap::new();
        let root = index[dtd.root()];
        children[0].push(root);
        sigma.insert((0, root), Path::label(dtd.root()));
        for (name, content) in dtd.productions() {
            let a = index[name.as_str()];
            let mut seen: Vec<usize> = Vec::new();
            for child in content.child_types() {
                let b = index[child];
                if !seen.contains(&b) {
                    seen.push(b);
                    children[a].push(b);
                    sigma.insert((a, b), Path::label(child));
                }
            }
        }
        // Over the document itself every declared attribute is visible.
        let attrs = labels
            .iter()
            .map(|l| dtd.attribute_defs(l).iter().map(|d| d.name.clone()).collect())
            .collect();
        let has_text = labels
            .iter()
            .map(|l| matches!(dtd.production(l), Some(sxv_dtd::NormalContent::Str)))
            .collect();
        ViewGraph { labels, children, sigma, attrs, has_text, doc_node: 0, root }
    }

    /// Build from a document DTD unfolded to `height` (§4.2 applied to
    /// the *document* side — used to optimize queries over recursive
    /// document DTDs). Identity σ, labels repeat across depths.
    pub fn from_dtd_unfolded(dtd: &sxv_dtd::Dtd, height: usize) -> Result<Self> {
        let unfolded =
            sxv_dtd::UnfoldedDtd::new(dtd, height).ok_or(Error::UnfoldImpossible { height })?;
        let n = unfolded.len();
        // Node 0 = document node; unfolded node i → graph node i + 1.
        let mut labels = vec![String::new()];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let mut sigma = HashMap::new();
        for id in unfolded.ids() {
            labels.push(unfolded.label(id).to_string());
        }
        let root = unfolded.root().0 + 1;
        children[0].push(root);
        sigma.insert((0, root), Path::label(unfolded.label(unfolded.root())));
        for id in unfolded.ids() {
            let a = id.0 + 1;
            for child in unfolded.children(id) {
                let b = child.0 + 1;
                children[a].push(b);
                sigma.insert((a, b), Path::label(unfolded.label(child)));
            }
        }
        let attrs = labels
            .iter()
            .map(|l| dtd.attribute_defs(l).iter().map(|d| d.name.clone()).collect())
            .collect();
        let has_text = labels
            .iter()
            .map(|l| matches!(dtd.production(l), Some(sxv_dtd::NormalContent::Str)))
            .collect();
        Ok(ViewGraph { labels, children, sigma, attrs, has_text, doc_node: 0, root })
    }

    /// The virtual document node (parent of the root).
    pub fn doc_node(&self) -> usize {
        self.doc_node
    }

    /// Is `attr` visible on (view) elements at this node?
    pub fn attribute_visible(&self, node: usize, attr: &str) -> bool {
        self.attrs[node].iter().any(|a| a == attr)
    }

    /// Can elements at this node carry text children (`str` production)?
    pub fn has_text(&self, node: usize) -> bool {
        self.has_text[node]
    }

    /// The root element node.
    pub fn root_node(&self) -> usize {
        self.root
    }

    /// Label of a node (empty string for the document node).
    pub fn label_of(&self, n: usize) -> &str {
        &self.labels[n]
    }

    /// Children of a node.
    pub fn children_of(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        self.children[n].iter().copied()
    }

    /// First node with the given label (labels are unique for graphs built
    /// from views/DTDs; unfolded graphs repeat labels across depths).
    pub fn node_by_label(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Does the graph contain a cycle (recursive view or DTD)? The
    /// Prop. 5.1 image/simulation machinery assumes a DAG — per-label
    /// nodes conflate distinct occurrences once a cycle lets a label
    /// repeat along a path — so containment tests consult this and
    /// decline to certify on cyclic graphs.
    pub fn is_cyclic(&self) -> bool {
        // Iterative three-color DFS: 0 = white, 1 = on stack, 2 = done.
        let mut color = vec![0u8; self.children.len()];
        for start in 0..self.children.len() {
            if color[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            color[start] = 1;
            while let Some(&mut (n, ref mut i)) = stack.last_mut() {
                if *i < self.children[n].len() {
                    let c = self.children[n][*i];
                    *i += 1;
                    match color[c] {
                        0 => {
                            color[c] = 1;
                            stack.push((c, 0));
                        }
                        1 => return true,
                        _ => {}
                    }
                } else {
                    color[n] = 2;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Nodes reachable from `n`, including `n` (descendant-or-self).
    pub fn descendants_or_self(&self, n: usize) -> BTreeSet<usize> {
        let mut reach = BTreeSet::new();
        reach.insert(n);
        let mut stack = vec![n];
        while let Some(x) = stack.pop() {
            for &y in &self.children[x] {
                if reach.insert(y) {
                    stack.push(y);
                }
            }
        }
        reach
    }

    /// Number of nodes (including the virtual document node) — the
    /// `|D_v|` of Theorem 4.1.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff the graph is empty (never: construction adds the root).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Rewrite a query evaluated at the view root (per-target tables).
    pub fn rewrite(&self, p: &Path) -> Result<Path> {
        let mut ctx = Rewriter { graph: self, memo: HashMap::new(), rec: HashMap::new() };
        let table = ctx.rw_path(p, self.root)?;
        Ok(Path::union_all(table.into_values()))
    }

    /// Rewrite with the paper's merged combination (Fig. 6 verbatim).
    pub fn rewrite_merged(&self, p: &Path) -> Result<Path> {
        let mut ctx = Rewriter { graph: self, memo: HashMap::new(), rec: HashMap::new() };
        let (q, _) = ctx.rw_merged(p, self.root)?;
        Ok(q)
    }

    fn sigma_edge(&self, a: usize, b: usize) -> &Path {
        &self.sigma[&(a, b)]
    }

    /// Public entry to `recProc` (used by the §5 optimizer).
    pub fn rec_proc_public(&self, a: usize) -> (Vec<usize>, HashMap<usize, Path>) {
        self.rec_proc(a)
    }

    /// `recProc(A)`: descendant-or-self reachability with translated path
    /// expressions, built in topological order so shared prefixes stay
    /// shared (the paper's symbolic `Z_x` variables).
    fn rec_proc(&self, a: usize) -> (Vec<usize>, HashMap<usize, Path>) {
        // Reachable subgraph (including `a` itself: descendant-or-self).
        let mut reach: BTreeSet<usize> = BTreeSet::new();
        reach.insert(a);
        let mut stack = vec![a];
        while let Some(x) = stack.pop() {
            for &y in &self.children[x] {
                if reach.insert(y) {
                    stack.push(y);
                }
            }
        }
        // Kahn topological order of the reachable subgraph.
        let mut indegree: HashMap<usize, usize> = reach.iter().map(|&n| (n, 0)).collect();
        for &x in &reach {
            for &y in &self.children[x] {
                if reach.contains(&y) {
                    *indegree.get_mut(&y).unwrap() += 1;
                }
            }
        }
        let mut queue: Vec<usize> = reach.iter().copied().filter(|n| indegree[n] == 0).collect();
        let mut order = Vec::with_capacity(reach.len());
        while let Some(x) = queue.pop() {
            order.push(x);
            for &y in &self.children[x] {
                if let Some(d) = indegree.get_mut(&y) {
                    *d -= 1;
                    if *d == 0 {
                        queue.push(y);
                    }
                }
            }
        }
        if order.len() < reach.len() {
            // Cyclic reachable subgraph (recursive view or DTD): Kahn's
            // order is partial, so the symbolic DAG accumulation below
            // does not apply. Fall back to Kleene state elimination —
            // recrw entries become regular path expressions whose loops
            // are `(…)*` closures (§4.2 handled directly, no unfolding).
            let nodes: Vec<usize> = reach.iter().copied().collect();
            let mut edges: HashMap<(usize, usize), Path> = HashMap::new();
            for &x in &nodes {
                for &y in &self.children[x] {
                    if reach.contains(&y) {
                        edges.insert((x, y), self.sigma_edge(x, y).clone());
                    }
                }
            }
            let recrw = kleene_reach(&nodes, &edges, a);
            return (nodes, recrw);
        }
        let mut recrw: HashMap<usize, Path> = HashMap::new();
        recrw.insert(a, Path::Empty);
        for &y in &order {
            if y == a {
                continue;
            }
            // Group incoming edges by their σ annotation and factor common
            // prefixes, so shared intermediate nodes are expressed once —
            // this is what keeps `recrw(A, B)` bounded by |D_v| (the
            // paper's symbolic `Z_x` sharing): Fig. 7(a) yields
            // `(b ∪ ε)/c/(e ∪ f)/g`, not four enumerated paths.
            let mut groups: Vec<(Path, Vec<Path>)> = Vec::new();
            for &x in &reach {
                if self.children[x].contains(&y) {
                    if let Some(prefix) = recrw.get(&x) {
                        let s = self.sigma_edge(x, y);
                        match groups.iter_mut().find(|(gs, _)| gs == s) {
                            Some((_, prefixes)) => prefixes.push(prefix.clone()),
                            None => groups.push((s.clone(), vec![prefix.clone()])),
                        }
                    }
                }
            }
            let mut acc = Path::EmptySet;
            for (s, prefixes) in groups {
                acc = Path::union(acc, Path::step(factored_union(prefixes), s));
            }
            recrw.insert(y, acc);
        }
        (order, recrw)
    }
}

/// Walk expressions from `start` over an edge-labelled graph, by Kleene
/// state elimination (McNaughton–Yamada): `out[y]` is a path expression
/// selecting, from `start`'s document context, the document nodes of
/// every walk ending at `y` (including the empty walk when
/// `y == start`). Cycles become `(…)*` closures — exactly the regular
/// path expressions §4.2 shows finite unions cannot express, supplied
/// here by the extended `Path::Closure` operator.
///
/// Soundness of composing σ annotations along walks is the same
/// argument as the `Step` case of `rw`: each edge expression is
/// evaluated at the document nodes its source view node translates to.
/// Intermediate expressions are re-simplified each round to keep the
/// (worst-case exponential) elimination bounded on the small graphs
/// view DTDs produce.
pub(crate) fn kleene_reach(
    nodes: &[usize],
    edges: &HashMap<(usize, usize), Path>,
    start: usize,
) -> HashMap<usize, Path> {
    let mut r: HashMap<(usize, usize), Path> = edges.clone();
    for &k in nodes {
        // R^k_ij = R_ij ∪ R_ik (R_kk)* R_kj, all taken at round k-1:
        // snapshot row k and column k before updating.
        let kk_star = Path::closure(r.get(&(k, k)).cloned().unwrap_or(Path::EmptySet));
        let row_k: Vec<(usize, Path)> =
            nodes.iter().filter_map(|&j| r.get(&(k, j)).map(|p| (j, p.clone()))).collect();
        let col_k: Vec<(usize, Path)> =
            nodes.iter().filter_map(|&i| r.get(&(i, k)).map(|p| (i, p.clone()))).collect();
        for (i, ik) in &col_k {
            for (j, kj) in &row_k {
                let via = Path::step(ik.clone(), Path::step(kk_star.clone(), kj.clone()));
                if via.is_empty_set() {
                    continue;
                }
                let cur = r.remove(&(*i, *j)).unwrap_or(Path::EmptySet);
                r.insert((*i, *j), simplify(&Path::union(cur, via)));
            }
        }
    }
    let mut out = HashMap::new();
    for &y in nodes {
        let walks = r.get(&(start, y)).cloned().unwrap_or(Path::EmptySet);
        // The empty walk reaches `start` itself; `R_ss` is closed under
        // concatenation, so `(R_ss)* = ε ∪ R_ss` — the closure form is
        // both compact and a single plan operator. Without loops this
        // is `closure(∅) = ε`, matching the DAG accumulation.
        let e = if y == start { Path::closure(walks) } else { walks };
        out.insert(y, simplify(&e));
    }
    out
}

/// Continuation of a query from a *text* node: text nodes are leaves, so
/// only `ε` (and qualifiers over the text itself) survive; label, wildcard
/// and text steps become `∅`. This mapping is exact — view text nodes and
/// their document sources are both leaves.
pub(crate) fn continue_from_text(p: &Path) -> Path {
    match p {
        Path::Empty => Path::Empty,
        Path::EmptySet | Path::Label(_) | Path::Wildcard | Path::Text | Path::Doc => Path::EmptySet,
        Path::Step(a, b) => Path::step(continue_from_text(a), continue_from_text(b)),
        // descendant-or-self of a leaf is the leaf itself.
        Path::Descendant(inner) => continue_from_text(inner),
        // ε ∈ (p)*, and no iteration leaves the leaf: the closure at a
        // text node is the text node itself.
        Path::Closure(_) => Path::Empty,
        Path::Union(a, b) => Path::union(continue_from_text(a), continue_from_text(b)),
        Path::Filter(base, q) => Path::filter(continue_from_text(base), text_qual(q)),
    }
}

/// A qualifier evaluated at a text node: attribute tests are false, path
/// tests reduce through [`continue_from_text`], `[. = c]` compares the
/// text itself.
pub(crate) fn text_qual(q: &Qualifier) -> Qualifier {
    match q {
        Qualifier::True | Qualifier::False => q.clone(),
        Qualifier::Attr(_) | Qualifier::AttrEq(..) => Qualifier::False,
        Qualifier::Path(p) => Qualifier::path(continue_from_text(p)),
        Qualifier::Eq(p, c) => {
            let reduced = continue_from_text(p);
            if reduced.is_empty_set() {
                Qualifier::False
            } else {
                Qualifier::Eq(reduced, c.clone())
            }
        }
        Qualifier::And(a, b) => Qualifier::and(text_qual(a), text_qual(b)),
        Qualifier::Or(a, b) => Qualifier::or(text_qual(a), text_qual(b)),
        Qualifier::Not(inner) => Qualifier::not(text_qual(inner)),
    }
}

/// Compute minimum instance heights for view types (the unfolding's
/// non-recursive-rule analysis, mirroring `DtdGraph::min_heights`).
fn view_min_heights(view: &SecurityView) -> HashMap<String, usize> {
    let mut h: HashMap<String, usize> =
        view.productions().iter().map(|(n, _)| (n.clone(), usize::MAX)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (name, content) in view.productions() {
            let candidate = match content {
                ViewContent::Str | ViewContent::Empty => Some(0),
                ViewContent::Star(_) => Some(0),
                ViewContent::Seq(items) => {
                    // Required (One) children bound the height; Many
                    // children can be absent.
                    let mut worst = 0usize;
                    let mut ok = true;
                    for item in items {
                        if let ViewItem::One(b) = item {
                            match h[b.as_str()] {
                                usize::MAX => ok = false,
                                v => worst = worst.max(v + 1),
                            }
                        }
                    }
                    ok.then_some(worst)
                }
                ViewContent::Choice { alternatives, optional } => {
                    if *optional {
                        Some(0)
                    } else {
                        alternatives
                            .iter()
                            .map(|b| h[b.as_str()])
                            .filter(|&v| v != usize::MAX)
                            .min()
                            .map(|v| v + 1)
                    }
                }
            };
            if let Some(c) = candidate {
                if c < h[name.as_str()] {
                    h.insert(name.clone(), c);
                    changed = true;
                }
            }
        }
    }
    h
}

/// A translation target: a view-DTD node, or the text content of one
/// (`text()` steps land on text, which no further label step can leave).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Target {
    /// An element node of the view graph.
    Node(usize),
    /// The text children of an element node.
    TextOf(usize),
}

/// Per-target translation table: target → document query.
type Table = BTreeMap<Target, Path>;

struct Rewriter<'a> {
    graph: &'a ViewGraph,
    /// Memo for the DP: (sub-query address, node) → table.
    memo: HashMap<(usize, usize), Table>,
    /// recProc cache per node.
    rec: HashMap<usize, (Vec<usize>, HashMap<usize, Path>)>,
}

impl<'a> Rewriter<'a> {
    fn rec_info(&mut self, a: usize) -> &(Vec<usize>, HashMap<usize, Path>) {
        if !self.rec.contains_key(&a) {
            let info = self.graph.rec_proc(a);
            self.rec.insert(a, info);
        }
        &self.rec[&a]
    }

    fn rw_path(&mut self, p: &Path, node: usize) -> Result<Table> {
        let key = (p as *const Path as usize, node);
        if let Some(hit) = self.memo.get(&key) {
            return Ok(hit.clone());
        }
        let mut out = Table::new();
        match p {
            Path::Empty => {
                out.insert(Target::Node(node), Path::Empty);
            }
            Path::EmptySet => {}
            Path::Doc => {
                out.insert(Target::Node(self.graph.doc_node), Path::Doc);
            }
            Path::Label(l) => {
                for &c in &self.graph.children[node] {
                    if self.graph.labels[c] == *l {
                        merge(&mut out, Target::Node(c), self.graph.sigma_edge(node, c).clone());
                    }
                }
            }
            Path::Wildcard => {
                for &c in &self.graph.children[node] {
                    merge(&mut out, Target::Node(c), self.graph.sigma_edge(node, c).clone());
                }
            }
            // text() lands on the text content of a `str`-production node;
            // over the document the same node's text children are selected.
            Path::Text => {
                if self.graph.has_text[node] {
                    out.insert(Target::TextOf(node), Path::Text);
                }
            }
            Path::Step(p1, p2) => {
                let first = self.rw_path(p1, node)?;
                for (t, q1) in first {
                    match t {
                        Target::Node(v) => {
                            for (w, q2) in self.rw_path(p2, v)? {
                                merge(&mut out, w, Path::step(q1.clone(), q2));
                            }
                        }
                        // From a text node only ε (and qualifiers on the
                        // text itself) can continue; everything else is ∅.
                        Target::TextOf(_) => {
                            let q2 = continue_from_text(p2);
                            let composed = Path::step(q1, q2);
                            if !composed.is_empty_set() {
                                merge(&mut out, t, composed);
                            }
                        }
                    }
                }
            }
            Path::Descendant(p1) => {
                let (reach, recrw) = self.rec_info(node).clone();
                let mut branches: BTreeMap<Target, Vec<Path>> = BTreeMap::new();
                // `//` expands to descendant-or-self, which includes *text*
                // nodes; when `p1` is nullable (e.g. `//(l | ε)`) those text
                // nodes stay in the answer, so every reachable str-production
                // node also contributes its text children, continued through
                // the leaf-restricted form of `p1`.
                let text_cont = continue_from_text(p1);
                for b in reach {
                    let prefix = recrw[&b].clone();
                    if prefix.is_empty_set() {
                        continue;
                    }
                    for (w, q) in self.rw_path(p1, b)? {
                        branches.entry(w).or_default().push(Path::step(prefix.clone(), q));
                    }
                    if self.graph.has_text[b] && !text_cont.is_empty_set() {
                        branches
                            .entry(Target::TextOf(b))
                            .or_default()
                            .push(Path::step(prefix, Path::step(Path::Text, text_cont.clone())));
                    }
                }
                for (w, alts) in branches {
                    merge(&mut out, w, factored_union(alts));
                }
            }
            Path::Union(p1, p2) => {
                out = self.rw_path(p1, node)?;
                for (w, q) in self.rw_path(p2, node)? {
                    merge(&mut out, w, q);
                }
            }
            Path::Closure(p1) => {
                // `(p1)*` over the view: discover the graph whose edge
                // x→y is p1's per-target translation at x, then Kleene-
                // eliminate it — the same machinery recProc uses for
                // cyclic σ graphs. Text targets are closure endpoints
                // (text is a leaf; re-applying p1 there never leaves it).
                let mut nodes: Vec<usize> = vec![node];
                let mut edges: HashMap<(usize, usize), Path> = HashMap::new();
                let mut texts: Vec<(usize, usize, Path)> = Vec::new();
                let mut i = 0;
                while i < nodes.len() {
                    let x = nodes[i];
                    i += 1;
                    for (t, q) in self.rw_path(p1, x)? {
                        match t {
                            Target::Node(y) => {
                                match edges.remove(&(x, y)) {
                                    Some(prev) => {
                                        edges.insert((x, y), Path::union(prev, q));
                                    }
                                    None => {
                                        edges.insert((x, y), q);
                                    }
                                }
                                if !nodes.contains(&y) {
                                    nodes.push(y);
                                }
                            }
                            Target::TextOf(ty) => texts.push((x, ty, q)),
                        }
                    }
                }
                let reach_expr = kleene_reach(&nodes, &edges, node);
                for (&y, e) in &reach_expr {
                    if !e.is_empty_set() {
                        merge(&mut out, Target::Node(y), e.clone());
                    }
                }
                for (x, ty, q) in texts {
                    let prefix = &reach_expr[&x];
                    if !prefix.is_empty_set() {
                        merge(&mut out, Target::TextOf(ty), Path::step(prefix.clone(), q));
                    }
                }
            }
            Path::Filter(base, q) => {
                for (t, qb) in self.rw_path(base, node)? {
                    let rq = match t {
                        Target::Node(v) => self.rw_qual(q, v)?,
                        Target::TextOf(_) => text_qual(q),
                    };
                    let filtered = Path::filter(qb, rq);
                    if !filtered.is_empty_set() {
                        merge(&mut out, t, filtered);
                    }
                }
            }
        }
        self.memo.insert(key, out.clone());
        Ok(out)
    }

    fn rw_qual(&mut self, q: &Qualifier, node: usize) -> Result<Qualifier> {
        Ok(match q {
            Qualifier::True | Qualifier::False => q.clone(),
            // Attribute tests: an attribute hidden by the view is absent
            // from the user's perspective, so its test is false; visible
            // attributes live on the same document nodes and pass through.
            Qualifier::Attr(a) | Qualifier::AttrEq(a, _) => {
                if self.graph.attribute_visible(node, a) {
                    q.clone()
                } else {
                    Qualifier::False
                }
            }
            Qualifier::Path(p) => {
                let table = self.rw_path(p, node)?;
                Qualifier::path(Path::union_all(table.into_values()))
            }
            Qualifier::Eq(p, c) => {
                let table = self.rw_path(p, node)?;
                let union = Path::union_all(table.into_values());
                if union.is_empty_set() {
                    Qualifier::False
                } else {
                    Qualifier::Eq(union, c.clone())
                }
            }
            Qualifier::And(a, b) => Qualifier::and(self.rw_qual(a, node)?, self.rw_qual(b, node)?),
            Qualifier::Or(a, b) => Qualifier::or(self.rw_qual(a, node)?, self.rw_qual(b, node)?),
            Qualifier::Not(inner) => Qualifier::not(self.rw_qual(inner, node)?),
        })
    }

    /// Fig. 6 verbatim: merged `(rw, reach)` pairs.
    fn rw_merged(&mut self, p: &Path, node: usize) -> Result<(Path, BTreeSet<usize>)> {
        Ok(match p {
            Path::Text => {
                // The merged comparison mode predates text(); the primary
                // per-target rewriting supports it.
                return Err(Error::UnsupportedQuery(
                    "text() in the Fig. 6 merged comparison mode".into(),
                ));
            }
            Path::Closure(_) => {
                // Fig. 6 has no Kleene case; the per-target rewriting
                // supports closures via state elimination.
                return Err(Error::UnsupportedQuery(
                    "Kleene closure in the Fig. 6 merged comparison mode".into(),
                ));
            }
            Path::Empty => (Path::Empty, BTreeSet::from([node])),
            Path::EmptySet => (Path::EmptySet, BTreeSet::new()),
            Path::Doc => (Path::Doc, BTreeSet::from([self.graph.doc_node])),
            Path::Label(l) => {
                let mut rw = Path::EmptySet;
                let mut reach = BTreeSet::new();
                for &c in &self.graph.children[node] {
                    if self.graph.labels[c] == *l {
                        rw = Path::union(rw, self.graph.sigma_edge(node, c).clone());
                        reach.insert(c);
                    }
                }
                (rw, reach)
            }
            Path::Wildcard => {
                let mut rw = Path::EmptySet;
                let mut reach = BTreeSet::new();
                for &c in &self.graph.children[node] {
                    rw = Path::union(rw, self.graph.sigma_edge(node, c).clone());
                    reach.insert(c);
                }
                (rw, reach)
            }
            Path::Step(p1, p2) => {
                let (rw1, reach1) = self.rw_merged(p1, node)?;
                if rw1.is_empty_set() {
                    return Ok((Path::EmptySet, BTreeSet::new()));
                }
                let mut qq = Path::EmptySet;
                let mut reach = BTreeSet::new();
                for v in reach1 {
                    let (rw2, reach2) = self.rw_merged(p2, v)?;
                    qq = Path::union(qq, rw2);
                    reach.extend(reach2);
                }
                if qq.is_empty_set() {
                    (Path::EmptySet, BTreeSet::new())
                } else {
                    (Path::step(rw1, qq), reach)
                }
            }
            Path::Descendant(p1) => {
                let (reach_dd, recrw) = self.rec_info(node).clone();
                let mut rw = Path::EmptySet;
                let mut reach = BTreeSet::new();
                for b in reach_dd {
                    let prefix = recrw[&b].clone();
                    if prefix.is_empty_set() {
                        continue;
                    }
                    let (rw1, reach1) = self.rw_merged(p1, b)?;
                    if !rw1.is_empty_set() {
                        rw = Path::union(rw, Path::step(prefix, rw1));
                        reach.extend(reach1);
                    }
                }
                (rw, reach)
            }
            Path::Union(p1, p2) => {
                let (rw1, reach1) = self.rw_merged(p1, node)?;
                let (rw2, reach2) = self.rw_merged(p2, node)?;
                let mut reach = reach1;
                reach.extend(reach2);
                (Path::union(rw1, rw2), reach)
            }
            Path::Filter(base, q) => {
                let (rwb, reachb) = self.rw_merged(base, node)?;
                if rwb.is_empty_set() {
                    return Ok((Path::EmptySet, BTreeSet::new()));
                }
                // Fig. 6 translates the qualifier at the context node
                // (cases 7–12 are stated for ε[q]); we translate at each
                // reached node and disjoin — the merged analogue.
                let mut rq = Qualifier::False;
                for &v in &reachb {
                    rq = Qualifier::or(rq, self.rw_qual(q, v)?);
                }
                (Path::filter(rwb, rq), reachb)
            }
        })
    }
}

fn merge(table: &mut Table, target: Target, q: Path) {
    match table.get(&target) {
        Some(existing) => {
            let merged = Path::union(existing.clone(), q);
            table.insert(target, merged);
        }
        None => {
            table.insert(target, q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AccessSpec;
    use crate::view::derive::derive_view;
    use crate::view::materialize::materialize;
    use sxv_dtd::parse_dtd;
    use sxv_xml::parse as parse_xml;
    use sxv_xpath::{eval_at_root, parse};

    fn hospital_dtd() -> sxv_dtd::Dtd {
        parse_dtd(
            r#"
<!ELEMENT hospital (dept*)>
<!ELEMENT dept (clinicalTrial, patientInfo, staffInfo)>
<!ELEMENT clinicalTrial (patientInfo, test)>
<!ELEMENT patientInfo (patient*)>
<!ELEMENT patient (name, wardNo, treatment)>
<!ELEMENT treatment (trial | regular)>
<!ELEMENT trial (bill)>
<!ELEMENT regular (bill, medication)>
<!ELEMENT staffInfo (staff*)>
<!ELEMENT staff (doctor | nurse)>
<!ELEMENT doctor (name)>
<!ELEMENT nurse (name)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT wardNo (#PCDATA)>
<!ELEMENT bill (#PCDATA)>
<!ELEMENT medication (#PCDATA)>
<!ELEMENT test (#PCDATA)>
"#,
            "hospital",
        )
        .unwrap()
    }

    fn nurse_spec() -> AccessSpec {
        AccessSpec::builder(&hospital_dtd())
            .bind("wardNo", "6")
            .cond_str("hospital", "dept", "*/patient/wardNo=$wardNo")
            .unwrap()
            .deny("dept", "clinicalTrial")
            .allow("clinicalTrial", "patientInfo")
            .deny("clinicalTrial", "test")
            .deny("treatment", "trial")
            .deny("treatment", "regular")
            .allow("trial", "bill")
            .allow("regular", "bill")
            .allow("regular", "medication")
            .build()
            .unwrap()
    }

    fn hospital_doc() -> sxv_xml::Document {
        parse_xml(
            r#"<hospital>
  <dept>
    <clinicalTrial>
      <patientInfo>
        <patient><name>Ann</name><wardNo>6</wardNo>
          <treatment><trial><bill>100</bill></trial></treatment>
        </patient>
      </patientInfo>
      <test>t1</test>
    </clinicalTrial>
    <patientInfo>
      <patient><name>Bob</name><wardNo>6</wardNo>
        <treatment><regular><bill>70</bill><medication>m1</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo><staff><nurse><name>Sue</name></nurse></staff></staffInfo>
  </dept>
  <dept>
    <clinicalTrial><patientInfo/><test>t2</test></clinicalTrial>
    <patientInfo>
      <patient><name>Cat</name><wardNo>7</wardNo>
        <treatment><regular><bill>30</bill><medication>m2</medication></regular></treatment>
      </patient>
    </patientInfo>
    <staffInfo/>
  </dept>
</hospital>"#,
        )
        .unwrap()
    }

    /// `p(T_v) = p_t(T)` checked through the materialization mapping.
    fn assert_equivalent(spec: &AccessSpec, query: &str) {
        let view = derive_view(spec).unwrap();
        let doc = hospital_doc();
        let p = parse(query).unwrap();
        let pt = rewrite(&view, &p).unwrap();
        let m = materialize(spec, &view, &doc).unwrap();
        let over_view: Vec<_> = m.sources_of(&eval_at_root(&m.doc, &p));
        let over_doc = eval_at_root(&doc, &pt);
        assert_eq!(
            over_view, over_doc,
            "query {query}: view answer ≠ rewritten answer\n  p_t = {pt}"
        );
    }

    #[test]
    fn example_4_1_descendant_query() {
        let view = derive_view(&nurse_spec()).unwrap();
        let p = parse("//patient//bill").unwrap();
        let pt = rewrite(&view, &p).unwrap();
        let s = pt.to_string();
        // The structure of the paper's answer: reach patients through
        // dept[q1] and both patientInfo routes, then bills through the
        // hidden trial/regular elements.
        assert!(s.contains("dept[*/patient/wardNo='6']"), "{s}");
        assert!(s.contains("clinicalTrial/patientInfo"), "{s}");
        assert!(s.contains("trial"), "{s}");
        assert!(s.contains("regular"), "{s}");
        // And it evaluates correctly.
        assert_equivalent(&nurse_spec(), "//patient//bill");
    }

    #[test]
    fn equivalence_on_paper_queries() {
        let spec = nurse_spec();
        for q in [
            "//patient",
            "//patient/name",
            "dept/patientInfo/patient/name",
            "//dept//patientInfo/patient/name",
            "//dept/patientInfo/patient/name",
            "//bill",
            "//patient[wardNo='6']/name",
            "dept/*",
            "*",
            "//name",
            "dept/staffInfo/staff/nurse/name",
            "//patient[treatment]",
            "//patient[not(treatment)]",
            "//treatment/*/bill",
            "//treatment/*",
        ] {
            assert_equivalent(&spec, q);
        }
    }

    #[test]
    fn inference_attack_of_example_1_1_blocked() {
        // Over the *view*, //dept//patientInfo/... and //dept/patientInfo/...
        // return the same patients — the clinicalTrial grouping is gone, so
        // the Example 1.1 difference attack yields nothing.
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let p1 = parse("//dept//patientInfo/patient/name").unwrap();
        let p2 = parse("//dept/patientInfo/patient/name").unwrap();
        let t1 = rewrite(&view, &p1).unwrap();
        let t2 = rewrite(&view, &p2).unwrap();
        let r1 = eval_at_root(&doc, &t1);
        let r2 = eval_at_root(&doc, &t2);
        assert_eq!(r1, r2, "both queries must see the same flattened patients");
        let names: Vec<String> = r1.iter().map(|&n| doc.string_value(n)).collect();
        assert!(names.contains(&"Ann".to_string()), "trial patients included, not separable");
    }

    #[test]
    fn queries_mentioning_hidden_labels_rewrite_to_empty() {
        let view = derive_view(&nurse_spec()).unwrap();
        for q in ["//clinicalTrial", "//trial", "dept/clinicalTrial", "//regular/medication"] {
            let pt = rewrite(&view, &parse(q).unwrap()).unwrap();
            assert!(pt.is_empty_set(), "{q} must translate to ∅, got {pt}");
        }
    }

    #[test]
    fn dummy_labels_are_queryable() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        // Users see dummy1/dummy2 in the view DTD and may query them.
        let p = parse("//treatment/dummy1/bill").unwrap();
        let pt = rewrite(&view, &p).unwrap();
        let r = eval_at_root(&doc, &pt);
        assert_eq!(r.len(), 1, "Ann's trial bill via its dummy name: {pt}");
    }

    #[test]
    fn absolute_queries_supported() {
        assert_equivalent(&nurse_spec(), "/hospital/dept/patientInfo/patient");
    }

    #[test]
    fn recproc_factored_form_fig_7a() {
        // Fig. 7(a)'s diamond shape: a has children b and c, b also leads
        // to c, c branches to e|f, both of which lead to g. recrw(a, g)
        // must stay factored — (… ∪ ε)/c/(e ∪ f)/g — not an enumeration of
        // the four root-to-g paths.
        let dtd = parse_dtd(
            "<!ELEMENT a (b, c)><!ELEMENT b (c)><!ELEMENT c (e | f)>\
             <!ELEMENT e (g)><!ELEMENT f (g)><!ELEMENT g EMPTY>",
            "a",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        let graph = ViewGraph::from_view(&view).unwrap();
        let pt = graph.rewrite(&parse("//g").unwrap()).unwrap();
        let s = pt.to_string();
        // Sharing: `g` and `c` appear once, not once per enumerated path.
        assert_eq!(s.matches('g').count(), 1, "g translated once: {s}");
        assert_eq!(s.matches('c').count(), 1, "c shared across both routes: {s}");
        assert!(s.contains("e | f") || s.contains("f | e"), "choice stays factored: {s}");
    }

    #[test]
    fn recursive_view_rewrites_directly_with_closure() {
        // A recursive view DTD (a → b, clist; clist → c*; c → a): the
        // Fig. 7(b) argument shows `//` needs a *regular* expression —
        // which the direct translation now produces as a `(…)*` closure.
        let dtd = parse_dtd(
            "<!ELEMENT a (b, clist)><!ELEMENT clist (c*)>\
             <!ELEMENT c (a)><!ELEMENT b (#PCDATA)>",
            "a",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert!(view.is_recursive());
        let p = parse("//b").unwrap();
        let pt = rewrite(&view, &p).unwrap();
        assert!(pt.to_string().contains(")*"), "cycle translated to a closure: {pt}");
        let doc =
            parse_xml("<a><b>1</b><clist><c><a><b>2</b><clist/></a></c></clist></a>").unwrap();
        let r = eval_at_root(&doc, &pt);
        assert_eq!(r.len(), 2, "both b's found: {pt}");
        // The direct translation agrees with the §4.2 unfolding oracle
        // at the document's height.
        let oracle = rewrite_with_height(&view, &p, doc.height()).unwrap();
        assert_eq!(r, eval_at_root(&doc, &oracle), "direct ≠ unfolded: {pt} vs {oracle}");
        // And keeps working on a document deeper than that height.
        let deep = parse_xml(
            "<a><b>1</b><clist><c><a><b>2</b><clist><c><a><b>3</b><clist><c><a><b>4</b>\
             <clist/></a></c></clist></a></c></clist></a></c></clist></a>",
        )
        .unwrap();
        assert_eq!(eval_at_root(&deep, &pt).len(), 4, "{pt}");
    }

    #[test]
    fn recursive_view_with_hidden_recursion() {
        // Hide `clist`'s label entirely: the recursion survives through the
        // view's dummy/shortcut structure, and //b over the unfolded view
        // translates to a union over the unrolled chains.
        let dtd = parse_dtd(
            "<!ELEMENT a (b, clist)><!ELEMENT clist (c*)>\
             <!ELEMENT c (a)><!ELEMENT b (#PCDATA)>",
            "a",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny("a", "clist").allow("c", "a").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert!(view.is_recursive(), "recursion retained through the hidden region");
        let doc = parse_xml(
            "<a><b>x</b><clist><c><a><b>y</b><clist><c><a><b>z</b><clist/></a></c></clist></a></c></clist></a>",
        )
        .unwrap();
        let pt = rewrite_with_height(&view, &parse("//b").unwrap(), doc.height()).unwrap();
        let r = eval_at_root(&doc, &pt);
        assert_eq!(r.len(), 3, "all b's through the unrolled chain: {pt}");
    }

    #[test]
    fn merged_variant_agrees_on_paper_view() {
        // No shared child labels with differing σ in the nurse view, so the
        // merged (Fig. 6 verbatim) and per-target variants agree.
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        for q in ["//patient//bill", "//patient/name", "dept/*", "//name"] {
            let p = parse(q).unwrap();
            let precise = rewrite(&view, &p).unwrap();
            let merged = rewrite_paper_merge(&view, &p).unwrap();
            assert_eq!(
                eval_at_root(&doc, &precise),
                eval_at_root(&doc, &merged),
                "{q}: merged and per-target answers differ"
            );
        }
    }

    #[test]
    fn per_target_fixes_shared_label_leak() {
        // r → a, b ; a → c (σ c) ; b → c (σ x/c): the Fig. 6 merge applies
        // b's continuation under a. Build such a view by hand.
        use std::collections::BTreeMap;
        let mut sigma = BTreeMap::new();
        sigma.insert(("r".to_string(), "a".to_string()), parse("a").unwrap());
        sigma.insert(("r".to_string(), "b".to_string()), parse("b").unwrap());
        sigma.insert(("a".to_string(), "c".to_string()), parse("c").unwrap());
        sigma.insert(("b".to_string(), "c".to_string()), parse("x/c").unwrap());
        sigma.insert(("c".to_string(), "t".to_string()), parse("t").unwrap());
        let view = SecurityView::new(
            "r".into(),
            vec![
                (
                    "r".into(),
                    ViewContent::Seq(vec![ViewItem::One("a".into()), ViewItem::One("b".into())]),
                ),
                ("a".into(), ViewContent::Star("c".into())),
                ("b".into(), ViewContent::Star("c".into())),
                ("c".into(), ViewContent::Star("t".into())),
                ("t".into(), ViewContent::Str),
            ],
            sigma,
        );
        // Document where `a` also has an x/c subtree that the view hides.
        let doc = parse_xml(
            "<r><a><c><t>visible-a</t></c><x><c><t>leak</t></c></x></a>\
             <b><x><c><t>visible-b</t></c></x></b></r>",
        )
        .unwrap();
        let p = parse("*/c/t").unwrap();
        let precise = rewrite(&view, &p).unwrap();
        let r = eval_at_root(&doc, &precise);
        let values: Vec<String> = r.iter().map(|&n| doc.string_value(n)).collect();
        assert_eq!(values, ["visible-a", "visible-b"], "precise variant: {precise}");
        // The verbatim merge leaks `a/x/c/t`.
        let merged = rewrite_paper_merge(&view, &p).unwrap();
        let rm = eval_at_root(&doc, &merged);
        assert!(rm.len() > r.len(), "documented Fig. 6 unsoundness: {merged}");
    }

    #[test]
    fn qualifier_translation_uses_sigma() {
        let spec = nurse_spec();
        assert_equivalent(&spec, "dept[patientInfo/patient/name='Ann']/staffInfo");
        assert_equivalent(&spec, "//patient[name='Ann' or name='Bob']");
        assert_equivalent(&spec, "//patient[treatment and wardNo='6']/name");
    }

    #[test]
    fn attribute_qualifier_neutralized_for_hidden_attr_in_unfolded_graph() {
        // Recursive DTD with an attribute hidden by the policy: the
        // unfolded graph must carry attribute visibility too.
        let dtd = parse_dtd(
            "<!ELEMENT n (v, kids)><!ELEMENT kids (n*)><!ELEMENT v (#PCDATA)>             <!ATTLIST n secret CDATA #IMPLIED>             <!ATTLIST n public CDATA #IMPLIED>",
            "n",
        )
        .unwrap();
        let spec = AccessSpec::builder(&dtd).deny_attr("n", "secret").build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert!(view.is_recursive());
        let hidden = rewrite_with_height(&view, &parse("//n[@secret='x']").unwrap(), 6).unwrap();
        assert!(hidden.is_empty_set(), "hidden attribute test must be false: {hidden}");
        let visible = rewrite_with_height(&view, &parse("//n[@public='x']").unwrap(), 6).unwrap();
        assert!(!visible.is_empty_set());
        assert!(visible.to_string().contains("@public"), "{visible}");
    }

    #[test]
    fn wildcard_at_document_node_reaches_root_only() {
        let view = derive_view(&nurse_spec()).unwrap();
        let graph = ViewGraph::from_view(&view).unwrap();
        let pt = graph.rewrite(&parse("/*").unwrap()).unwrap();
        let doc = hospital_doc();
        use sxv_xpath::eval_at_document;
        let r = eval_at_document(&doc, &pt);
        assert_eq!(r, vec![doc.root().unwrap()]);
    }

    #[test]
    fn unfolding_impossible_height_errors() {
        let dtd = parse_dtd("<!ELEMENT a (b)><!ELEMENT b (#PCDATA)>", "a").unwrap();
        let spec = AccessSpec::builder(&dtd).build().unwrap();
        let view = derive_view(&spec).unwrap();
        assert!(matches!(
            rewrite_with_height(&view, &parse("//b").unwrap(), 0),
            Err(Error::UnfoldImpossible { height: 0 })
        ));
    }

    #[test]
    fn eq_qualifier_over_pruned_path_is_false() {
        let view = derive_view(&nurse_spec()).unwrap();
        // `test` is hidden: [test='x'] can never hold over the view.
        let pt = rewrite(&view, &parse("dept[test='x']").unwrap()).unwrap();
        assert!(pt.is_empty_set(), "{pt}");
    }

    #[test]
    fn negated_qualifier_over_pruned_path_is_true() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        // not([hidden]) is vacuously true over the view.
        let p = parse("//patient[not(treatment/trial)]/name").unwrap();
        let pt = rewrite(&view, &p).unwrap();
        let m = materialize(&spec, &view, &doc).unwrap();
        assert_eq!(m.sources_of(&eval_at_root(&m.doc, &p)), eval_at_root(&doc, &pt), "{pt}");
        // All visible patients qualify: trial's label does not exist in
        // the view, so the qualifier cannot discriminate.
        assert_eq!(eval_at_root(&doc, &pt).len(), 2);
    }

    #[test]
    fn text_selector_rewrites_exactly() {
        let spec = nurse_spec();
        let view = derive_view(&spec).unwrap();
        let doc = hospital_doc();
        let m = materialize(&spec, &view, &doc).unwrap();
        for q in [
            "//name/text()",
            "//patient/name/text()",
            "//text()",
            "//bill/text()[.='100']",
            "dept/patientInfo/patient/wardNo/text()",
            "//name/text()/.",
        ] {
            let p = parse(q).unwrap();
            let pt = rewrite(&view, &p).unwrap();
            let mut over_view = m.sources_of(&eval_at_root(&m.doc, &p));
            over_view.sort();
            over_view.dedup();
            assert_eq!(over_view, eval_at_root(&doc, &pt), "{q} → {pt}");
        }
        // Text of hidden elements is unreachable.
        let hidden = rewrite(&view, &parse("//test/text()").unwrap()).unwrap();
        assert!(hidden.is_empty_set(), "{hidden}");
        // No step continues past text.
        let dead = rewrite(&view, &parse("//name/text()/name").unwrap()).unwrap();
        assert!(dead.is_empty_set(), "{dead}");
        // The merged comparison mode reports text() as unsupported.
        assert!(matches!(
            rewrite_paper_merge(&view, &parse("//text()").unwrap()),
            Err(Error::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn empty_and_epsilon_queries() {
        let view = derive_view(&nurse_spec()).unwrap();
        assert_eq!(rewrite(&view, &Path::Empty).unwrap(), Path::Empty);
        assert!(rewrite(&view, &Path::EmptySet).unwrap().is_empty_set());
    }
}
